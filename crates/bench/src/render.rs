//! Markdown renderers for the figures binary and EXPERIMENTS.md, plus
//! the ASCII timeline views `hieras-timeline` prints for
//! [`TimeSeriesReport`] streams.

use crate::{DepthRow, LandmarkRow, SizeRow};
use hieras_obs::TimeSeriesReport;
use std::fmt::Write as _;

/// Renders Figure 2 (average hops vs network size) as markdown.
#[must_use]
pub fn fig2_table(rows: &[SizeRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "| model | nodes | Chord hops | HIERAS hops | HIERAS/Chord |");
    let _ = writeln!(s, "|-------|------:|-----------:|------------:|-------------:|");
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {} | {:.4} | {:.4} | {:+.2}% |",
            r.kind,
            r.nodes,
            r.chord.avg_hops,
            r.hieras.avg_hops,
            (r.hieras.avg_hops / r.chord.avg_hops - 1.0) * 100.0
        );
    }
    s
}

/// Renders Figure 3 (average latency vs network size) as markdown.
#[must_use]
pub fn fig3_table(rows: &[SizeRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "| model | nodes | Chord ms | HIERAS ms | HIERAS/Chord |");
    let _ = writeln!(s, "|-------|------:|---------:|----------:|-------------:|");
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {} | {:.1} | {:.1} | {:.2}% |",
            r.kind,
            r.nodes,
            r.chord.avg_latency_ms,
            r.hieras.avg_latency_ms,
            r.hieras.avg_latency_ms / r.chord.avg_latency_ms * 100.0
        );
    }
    s
}

/// Renders Figures 6/7 (landmark sweep) as markdown.
#[must_use]
pub fn landmark_table(rows: &[LandmarkRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "| landmarks | rings | Chord hops | HIERAS hops | lower hops | Chord ms | HIERAS ms | ratio |"
    );
    let _ = writeln!(
        s,
        "|----------:|------:|-----------:|------------:|-----------:|---------:|----------:|------:|"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {} | {:.3} | {:.3} | {:.3} | {:.1} | {:.1} | {:.1}% |",
            r.landmarks,
            r.rings,
            r.chord.avg_hops,
            r.hieras.avg_hops,
            r.hieras.avg_lower_hops,
            r.chord.avg_latency_ms,
            r.hieras.avg_latency_ms,
            r.hieras.avg_latency_ms / r.chord.avg_latency_ms * 100.0
        );
    }
    s
}

/// Renders Figures 8/9 (depth sweep) as markdown.
#[must_use]
pub fn depth_table(rows: &[DepthRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "| nodes | depth | HIERAS hops | HIERAS ms | Chord ms | ratio |");
    let _ = writeln!(s, "|------:|------:|------------:|----------:|---------:|------:|");
    for r in rows {
        let _ = writeln!(
            s,
            "| {} | {} | {:.3} | {:.1} | {:.1} | {:.1}% |",
            r.nodes,
            r.depth,
            r.hieras.avg_hops,
            r.hieras.avg_latency_ms,
            r.chord.avg_latency_ms,
            r.hieras.avg_latency_ms / r.chord.avg_latency_ms * 100.0
        );
    }
    s
}

/// Renders a PDF histogram comparison (Figure 4).
#[must_use]
pub fn pdf_table(chord: &[f64], hieras: &[f64], hieras_lower: &[f64]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "| hops | Chord | HIERAS | HIERAS lower-layer |");
    let _ = writeln!(s, "|-----:|------:|-------:|-------------------:|");
    let len = chord.len().max(hieras.len()).max(hieras_lower.len());
    for h in 0..len {
        let g = |v: &[f64]| v.get(h).copied().unwrap_or(0.0);
        let _ = writeln!(
            s,
            "| {} | {:.4} | {:.4} | {:.4} |",
            h,
            g(chord),
            g(hieras),
            g(hieras_lower)
        );
    }
    s
}

/// Renders a latency CDF comparison (Figure 5).
#[must_use]
pub fn cdf_table(points: &[(u32, f64, f64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "| latency ms | Chord CDF | HIERAS CDF |");
    let _ = writeln!(s, "|-----------:|----------:|-----------:|");
    for (x, c, h) in points {
        let _ = writeln!(s, "| {x} | {c:.4} | {h:.4} |");
    }
    s
}

/// Eight-level block-glyph sparkline over `values`, scaled to the
/// series' own maximum (an all-zero series renders all-low).
#[must_use]
pub fn sparkline(values: &[u64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| GLYPHS[((v * 7).div_ceil(max) as usize).min(7)])
        .collect()
}

/// Renders a [`TimeSeriesReport`] as sparklines plus a per-window
/// table: lookups/s, tail quantiles, failures, retries, and the
/// windows' epoch activity (published snapshots, membership events).
#[must_use]
pub fn timeline_table(ts: &TimeSeriesReport) -> String {
    use hieras_obs::names;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# timeline: {} windows x {} ms ({} clock)",
        ts.window_count(),
        ts.meta.window_ms,
        ts.meta.mode
    );
    if ts.windows.is_empty() {
        return s;
    }
    let rate: Vec<u64> = ts.windows.iter().map(|w| w.lookups).collect();
    let p99: Vec<u64> = ts.windows.iter().map(|w| w.latency.quantile(0.99)).collect();
    let _ = writeln!(s, "lookups {}", sparkline(&rate));
    let _ = writeln!(s, "p99 ms  {}", sparkline(&p99));
    // Publish-latency series: wall-mode runs observe the maintainer's
    // per-publish µs into each window's health registry (sim windows
    // never carry wall durations, so the series is wall-only).
    let pub_p50 = |w: &hieras_obs::TelemetryWindow| {
        w.health.hist(names::SERVE_EPOCH_PUBLISH_US).map(|h| h.quantile(0.50))
    };
    if ts.windows.iter().any(|w| pub_p50(w).is_some()) {
        let series: Vec<u64> =
            ts.windows.iter().map(|w| pub_p50(w).unwrap_or(0)).collect();
        let _ = writeln!(s, "pub µs  {}", sparkline(&series));
    }
    // Cache hit-rate series: runs with the hot-key lookup cache on
    // fold per-window probe/hit counters into each window's health
    // registry; cache-off runs never carry them, so the section only
    // appears when there is something to show.
    let cache_probes =
        |w: &hieras_obs::TelemetryWindow| w.health.counter(names::SERVE_CACHE_WINDOW_LOOKUPS);
    let cache_hits =
        |w: &hieras_obs::TelemetryWindow| w.health.counter(names::SERVE_CACHE_WINDOW_HITS);
    if ts.windows.iter().any(|w| cache_probes(w) > 0) {
        let pct: Vec<u64> = ts
            .windows
            .iter()
            .map(|w| {
                let probes = cache_probes(w);
                if probes > 0 { cache_hits(w) * 100 / probes } else { 0 }
            })
            .collect();
        let _ = writeln!(s, "cache % {}", sparkline(&pct));
        let (hits, probes) = ts
            .windows
            .iter()
            .fold((0u64, 0u64), |(h, p), w| (h + cache_hits(w), p + cache_probes(w)));
        let _ = writeln!(
            s,
            "# cache: {hits} hits / {probes} lookups ({:.1}%), per-window {}",
            100.0 * hits as f64 / probes.max(1) as f64,
            pct.iter()
                .map(|p| format!("{p}%"))
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    let _ = writeln!(
        s,
        "| window | lookups | lookups/s | p50 | p95 | p99 | p99.9 | fail | retry | epochs | full | pub µs | churn |"
    );
    let _ = writeln!(
        s,
        "|-------:|--------:|----------:|----:|----:|----:|------:|-----:|------:|-------:|-----:|-------:|------:|"
    );
    for w in &ts.windows {
        let per_sec = w.lookups as f64 * 1000.0 / ts.meta.window_ms as f64;
        let churn = w.health.counter(names::SERVE_EPOCH_JOINS)
            + w.health.counter(names::SERVE_EPOCH_LEAVES)
            + w.health.counter(names::SERVE_EPOCH_FAILS);
        let _ = writeln!(
            s,
            "| {} | {} | {:.0} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            w.index,
            w.lookups,
            per_sec,
            w.latency.quantile(0.50),
            w.latency.quantile(0.95),
            w.latency.quantile(0.99),
            w.latency.quantile(0.999),
            w.failures,
            w.retries,
            w.health.counter(names::SERVE_EPOCH_PUBLISHED),
            w.health.counter(names::SERVE_EPOCH_FULL_REBUILDS),
            pub_p50(w).map_or_else(|| "-".to_owned(), |v| v.to_string()),
            churn,
        );
    }
    // Fallback flags: in a run where the incremental path was active
    // (some window rebuilt by delta), call out every window the
    // maintainer fell back to a full rebuild — the windows whose
    // publish latency spikes off the delta baseline.
    let delta_active =
        ts.windows.iter().any(|w| w.health.counter(names::SERVE_EPOCH_DELTA_REBUILDS) > 0);
    let fallbacks: Vec<&hieras_obs::TelemetryWindow> = ts
        .windows
        .iter()
        .filter(|w| w.health.counter(names::SERVE_EPOCH_FULL_REBUILDS) > 0)
        .collect();
    if delta_active && !fallbacks.is_empty() {
        let _ = writeln!(s, "# full-rebuild fallbacks: {} windows", fallbacks.len());
        for w in fallbacks {
            let _ = writeln!(
                s,
                "window {}: {} full of {} rebuilds{}",
                w.index,
                w.health.counter(names::SERVE_EPOCH_FULL_REBUILDS),
                w.health.counter(names::SERVE_EPOCH_PUBLISHED),
                pub_p50(w).map_or_else(String::new, |v| format!(", publish p50 {v} µs")),
            );
        }
    }
    if !ts.breaches.is_empty() {
        let _ = writeln!(s, "# SLO breaches: {}", ts.breaches.len());
        for b in &ts.breaches {
            let _ = writeln!(
                s,
                "window {}: p99 {} ms ({}), failures {} ppm ({}); {} epochs, {} churn events",
                b.window,
                b.p99_ms,
                if b.p99_over { "OVER" } else { "ok" },
                b.failure_ppm,
                if b.failures_over { "OVER" } else { "ok" },
                b.epochs_published,
                b.churn_events,
            );
        }
    }
    if !ts.slow.is_empty() {
        let _ = writeln!(s, "# flight recorder: {} slow lookups", ts.slow.len());
        for rec in &ts.slow {
            let _ = writeln!(
                s,
                "window {}: {} ms, {} -> key {:#018x}, {} hops",
                rec.window,
                rec.latency_ms,
                rec.src,
                rec.key,
                rec.path.len(),
            );
        }
    }
    s
}

/// Renders per-window deltas between two time series (`b - a`) —
/// lookups, p99, failures — so churn-vs-quiesced transients diff in
/// CI logs. Windows present in only one series render with a `-` on
/// the missing side.
#[must_use]
pub fn timeline_compare(a: &TimeSeriesReport, b: &TimeSeriesReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# compare: {} vs {} windows ({} ms {} | {} ms {})",
        a.window_count(),
        b.window_count(),
        a.meta.window_ms,
        a.meta.mode,
        b.meta.window_ms,
        b.meta.mode
    );
    let _ = writeln!(s, "| window | lookups a | lookups b | Δlookups | p99 a | p99 b | Δp99 | fail a | fail b |");
    let _ = writeln!(s, "|-------:|----------:|----------:|---------:|------:|------:|-----:|-------:|-------:|");
    let mut ia = a.windows.iter().peekable();
    let mut ib = b.windows.iter().peekable();
    loop {
        let (wa, wb) = match (ia.peek(), ib.peek()) {
            (None, None) => break,
            (Some(x), Some(y)) if x.index == y.index => (ia.next(), ib.next()),
            (Some(x), Some(y)) if x.index < y.index => (ia.next(), None),
            (Some(_), Some(_)) | (None, Some(_)) => (None, ib.next()),
            (Some(_), None) => (ia.next(), None),
        };
        let idx = wa.or(wb).expect("one side advanced").index;
        let fmt = |w: Option<&hieras_obs::TelemetryWindow>,
                   f: fn(&hieras_obs::TelemetryWindow) -> u64| {
            w.map_or_else(|| "-".to_owned(), |w| f(w).to_string())
        };
        let delta = |f: fn(&hieras_obs::TelemetryWindow) -> u64| match (wa, wb) {
            (Some(x), Some(y)) => format!("{:+}", f(y) as i64 - f(x) as i64),
            _ => "-".to_owned(),
        };
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            idx,
            fmt(wa, |w| w.lookups),
            fmt(wb, |w| w.lookups),
            delta(|w| w.lookups),
            fmt(wa, |w| w.latency.quantile(0.99)),
            fmt(wb, |w| w.latency.quantile(0.99)),
            delta(|w| w.latency.quantile(0.99)),
            fmt(wa, |w| w.failures),
            fmt(wb, |w| w.failures),
        );
    }
    // Flash-crowd flags: windows whose lookup volume spikes to at
    // least 3x the stream's own median — the signature a flash-crowd
    // workload leaves on the timeline. Flagged per side so a
    // crowd-vs-uniform diff names exactly where the surge landed.
    for (name, ts) in [("a", a), ("b", b)] {
        let mut volumes: Vec<u64> = ts.windows.iter().map(|w| w.lookups).collect();
        volumes.sort_unstable();
        let median = volumes.get(volumes.len() / 2).copied().unwrap_or(0);
        let crowded: Vec<&hieras_obs::TelemetryWindow> = if median > 0 {
            ts.windows.iter().filter(|w| w.lookups >= 3 * median).collect()
        } else {
            Vec::new()
        };
        if !crowded.is_empty() {
            let _ = writeln!(
                s,
                "# flash-crowd windows ({name}): {} of {} (median {median} lookups/window)",
                crowded.len(),
                ts.window_count(),
            );
            for w in crowded {
                let _ = writeln!(
                    s,
                    "window {}: {} lookups ({:.1}x median), p99 {} ms",
                    w.index,
                    w.lookups,
                    w.lookups as f64 / median as f64,
                    w.latency.quantile(0.99),
                );
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieras_sim::Summary;

    fn summary(hops: f64, ms: f64) -> Summary {
        Summary {
            requests: 10,
            avg_hops: hops,
            avg_latency_ms: ms,
            avg_lower_hops: 1.0,
            lower_hop_share: 0.5,
            lower_latency_share: 0.3,
            avg_link_delay_top_ms: 80.0,
            avg_link_delay_lower_ms: 25.0,
            latency_tail: hieras_sim::TailLatency {
                p50_ms: ms as u32,
                p95_ms: ms as u32,
                p99_ms: ms as u32,
                p999_ms: ms as u32,
            },
        }
    }

    #[test]
    fn tables_contain_all_rows_and_ratios() {
        let rows = vec![SizeRow {
            kind: "TS",
            nodes: 1000,
            chord: summary(6.0, 500.0),
            hieras: summary(6.1, 250.0),
        }];
        let t2 = fig2_table(&rows);
        assert!(t2.contains("| TS | 1000 |"));
        assert!(t2.contains("+1.67%"));
        let t3 = fig3_table(&rows);
        assert!(t3.contains("50.00%"));
    }

    #[test]
    fn pdf_table_pads_ragged_series() {
        let t = pdf_table(&[0.5, 0.5], &[1.0], &[0.2, 0.3, 0.5]);
        assert!(t.contains("| 2 | 0.0000 | 0.0000 | 0.5000 |"));
    }

    #[test]
    fn cdf_table_renders_points() {
        let t = cdf_table(&[(0, 0.0, 0.1), (100, 0.5, 0.9)]);
        assert!(t.contains("| 100 | 0.5000 | 0.9000 |"));
    }

    #[test]
    fn sparkline_scales_to_the_series_maximum() {
        assert_eq!(sparkline(&[0, 1]), "▁█");
        assert_eq!(sparkline(&[0, 0, 0]), "▁▁▁", "an all-zero series renders all-low");
        assert_eq!(sparkline(&[8, 4, 1]).chars().count(), 3);
    }

    fn demo_report() -> hieras_obs::TimeSeriesReport {
        use hieras_obs::{names, HopRecord, SloSpec, SlowLookup, TelemetryShard};
        let mut sh = TelemetryShard::new(1);
        sh.lookup(0, 10);
        sh.lookup(0, 20);
        sh.lookup(2, 500);
        sh.lookup_failed(2);
        sh.retries(2, 3);
        sh.health(2).inc(names::SERVE_EPOCH_PUBLISHED);
        sh.health(2).inc_by(names::SERVE_EPOCH_LEAVES, 2);
        sh.admit_slow(SlowLookup {
            window: 2,
            latency_ms: 500,
            src: 7,
            key: 0xabcd,
            seq: 1,
            path: vec![HopRecord { from: 7, to: 9, layer: 0, ms: 500 }],
        });
        sh.into_report("sim", 1000, Some(SloSpec { p99_ms: 100, max_failure_ppm: 1000 }))
    }

    #[test]
    fn timeline_table_renders_windows_breaches_and_flight_recorder() {
        let t = timeline_table(&demo_report());
        assert!(t.contains("# timeline: 2 windows x 1000 ms (sim clock)"), "{t}");
        // lookup_failed counts as a lookup too: 2 lookups, 1 failed.
        // No publish histogram (sim windows): the pub-µs cell dashes.
        assert!(t.contains("| 2 | 2 | 2 | 500 | 500 | 500 | 500 | 1 | 3 | 1 | 0 | - | 2 |"), "{t}");
        assert!(!t.contains("pub µs  "), "sim windows carry no publish series");
        assert!(!t.contains("fallbacks"), "no delta rebuilds, nothing to flag");
        assert!(t.contains("# SLO breaches: 1"), "{t}");
        assert!(t.contains("window 2: p99 500 ms (OVER)"), "{t}");
        assert!(t.contains("# flight recorder: 1 slow lookups"), "{t}");
        assert!(t.contains("window 2: 500 ms, 7 -> key 0x000000000000abcd, 1 hops"), "{t}");
    }

    #[test]
    fn timeline_table_flags_full_rebuild_fallbacks() {
        use hieras_obs::{names, TelemetryShard};
        let mut sh = TelemetryShard::new(0);
        // Window 0: two delta rebuilds. Window 1: one fell back full.
        sh.lookup(0, 10);
        sh.health(0).inc_by(names::SERVE_EPOCH_PUBLISHED, 2);
        sh.health(0).inc_by(names::SERVE_EPOCH_DELTA_REBUILDS, 2);
        sh.health(0).observe(names::SERVE_EPOCH_PUBLISH_US, 40);
        sh.lookup(1, 10);
        sh.health(1).inc_by(names::SERVE_EPOCH_PUBLISHED, 2);
        sh.health(1).inc(names::SERVE_EPOCH_DELTA_REBUILDS);
        sh.health(1).inc(names::SERVE_EPOCH_FULL_REBUILDS);
        sh.health(1).observe(names::SERVE_EPOCH_PUBLISH_US, 900);
        let t = timeline_table(&sh.into_report("wall", 250, None));
        assert!(t.contains("pub µs  "), "wall windows render the publish series");
        assert!(t.contains("# full-rebuild fallbacks: 1 windows"), "{t}");
        assert!(t.contains("window 1: 1 full of 2 rebuilds, publish p50 "), "{t}");
        // The per-window table carries the full count and publish p50.
        assert!(t.contains("| 0 | 1 | 4 | "), "{t}");
    }

    #[test]
    fn timeline_table_renders_cache_hit_rate_series() {
        use hieras_obs::{names, TelemetryShard};
        let mut sh = TelemetryShard::new(0);
        // Window 0: 4 probes, 1 hit. Window 1: 4 probes, 3 hits.
        sh.lookup(0, 10);
        sh.health(0).inc_by(names::SERVE_CACHE_WINDOW_LOOKUPS, 4);
        sh.health(0).inc_by(names::SERVE_CACHE_WINDOW_HITS, 1);
        sh.lookup(1, 10);
        sh.health(1).inc_by(names::SERVE_CACHE_WINDOW_LOOKUPS, 4);
        sh.health(1).inc_by(names::SERVE_CACHE_WINDOW_HITS, 3);
        let t = timeline_table(&sh.into_report("sim", 1000, None));
        assert!(t.contains("cache % "), "{t}");
        assert!(t.contains("# cache: 4 hits / 8 lookups (50.0%), per-window 25% 75%"), "{t}");
    }

    #[test]
    fn timeline_table_omits_cache_series_when_the_cache_is_off() {
        let t = timeline_table(&demo_report());
        assert!(!t.contains("cache %"), "cache-off windows render no cache series");
        assert!(!t.contains("# cache:"), "{t}");
    }

    #[test]
    fn timeline_compare_flags_flash_crowd_windows() {
        use hieras_obs::TelemetryShard;
        // Side a: steady 10 lookups/window. Side b: same stream with a
        // window-2 surge to 40 (4x the median of 10).
        let mut sa = TelemetryShard::new(0);
        let mut sb = TelemetryShard::new(0);
        for w in 0..4u64 {
            for _ in 0..10 {
                sa.lookup(w, 20);
                sb.lookup(w, 20);
            }
        }
        for _ in 0..30 {
            sb.lookup(2, 35);
        }
        let a = sa.into_report("sim", 1000, None);
        let b = sb.into_report("sim", 1000, None);
        let t = timeline_compare(&a, &b);
        assert!(!t.contains("flash-crowd windows (a)"), "{t}");
        assert!(t.contains("# flash-crowd windows (b): 1 of 4 (median 10 lookups/window)"), "{t}");
        assert!(t.contains("window 2: 40 lookups (4.0x median)"), "{t}");
    }

    #[test]
    fn timeline_compare_diffs_shared_windows_and_dashes_missing_ones() {
        let a = demo_report();
        let mut sh = hieras_obs::TelemetryShard::new(0);
        sh.lookup(0, 10);
        sh.lookup(1, 40);
        let b = sh.into_report("sim", 1000, None);
        let t = timeline_compare(&a, &b);
        // Window 0 in both: lookups 2 -> 1.
        assert!(t.contains("| 0 | 2 | 1 | -1 |"), "{t}");
        // Window 1 only in b, window 2 only in a: dashes on the gap.
        assert!(t.contains("| 1 | - | 1 | - |"), "{t}");
        assert!(t.contains("| 2 | 2 | - | - |"), "{t}");
    }

    #[test]
    fn depth_and_landmark_tables_render() {
        let d = depth_table(&[DepthRow {
            nodes: 5000,
            depth: 3,
            hieras: summary(6.2, 240.0),
            chord: summary(6.0, 500.0),
        }]);
        assert!(d.contains("| 5000 | 3 |"));
        let l = landmark_table(&[LandmarkRow {
            landmarks: 8,
            rings: 40,
            chord: summary(6.0, 500.0),
            hieras: summary(5.9, 216.0),
        }]);
        assert!(l.contains("| 8 | 40 |"));
    }
}
