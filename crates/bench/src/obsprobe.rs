//! Message-level observability probe.
//!
//! The timed replay path evaluates lookups against the *oracles*
//! (pure table walks — no messages), so it can say how many hops a
//! lookup takes but not which message types carried it. This module
//! drives a sample of the same workload through the message-level
//! [`SimNet`] with the [`Registry`] and [`Tracer`] enabled, producing
//! the per-message-type `net.send.*` / `net.deliver.*` counters,
//! `lookup.*` histograms, and per-lookup spans (with per-hop instants
//! exposing layer transitions) that the `--obs` / `--trace-out` bench
//! flags export.
//!
//! The probe network is churn-free, so every per-span `hops` close
//! field reconciles exactly with the aggregate `lookup.hops`
//! histogram — a property the bench integration tests assert.

use hieras_id::Id;
use hieras_obs::{Registry, TraceKind, Tracer};
use hieras_proto::SimNet;
use hieras_sim::{Experiment, Workload};
use std::collections::HashMap;

/// What one probe run captured.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsProbe {
    /// Lookups driven through the message network.
    pub lookups: usize,
    /// Total routing hops those lookups took.
    pub total_hops: u64,
    /// Counters and histograms recorded by the transport.
    pub registry: Registry,
    /// Per-lookup spans and per-hop instants.
    pub tracer: Tracer,
}

impl ObsProbe {
    /// Sums the `hops` close-field across all spans in the trace —
    /// the per-span view of [`ObsProbe::total_hops`]. The two agree
    /// exactly on a churn-free probe network.
    #[must_use]
    pub fn span_hops(&self) -> u64 {
        self.tracer
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Close)
            .flat_map(|e| e.fields.iter())
            .filter(|(k, _)| k == "hops")
            .map(|&(_, v)| v)
            .sum()
    }
}

/// Replays `lookups` workload requests through a stabilized [`SimNet`]
/// built from the experiment's HIERAS oracle, with full
/// instrumentation on. Deterministic in the experiment seed.
///
/// # Panics
/// Panics if the experiment is empty or a lookup is lost (impossible
/// in a churn-free network).
#[must_use]
pub fn message_probe(e: &Experiment, lookups: usize, trace_capacity: usize) -> ObsProbe {
    let index_of: HashMap<Id, u32> =
        e.ids.iter().enumerate().map(|(i, &id)| (id, i as u32)).collect();
    let mut net = SimNet::from_oracle(&e.hieras, &e.landmarks, |a, b| {
        u64::from(e.peer_latency(index_of[&a], index_of[&b]))
    });
    net.enable_registry();
    net.set_tracer(Tracer::bounded(trace_capacity));
    // The probe workload reuses the replay generator under a distinct
    // salt so it is the same at any sample size prefix.
    let w = Workload::new(e.config.nodes as u32, lookups, e.config.seed ^ 0x0b5e_7a11);
    let mut total_hops = 0u64;
    for (src, key) in w.iter() {
        let out = net.lookup(e.ids[src as usize], key);
        total_hops += u64::from(out.hops);
    }
    ObsProbe {
        lookups,
        total_hops,
        registry: net.take_registry().expect("registry enabled"),
        tracer: net.take_tracer().expect("tracer installed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieras_sim::ExperimentConfig;

    #[test]
    fn probe_is_deterministic_and_reconciles() {
        let e = Experiment::build(ExperimentConfig {
            requests: 0,
            ..ExperimentConfig::paper(150, 77)
        });
        let a = message_probe(&e, 60, 1 << 14);
        let b = message_probe(&e, 60, 1 << 14);
        assert_eq!(a, b, "probe must be a pure function of the experiment");
        assert_eq!(a.registry.counter("lookup.count"), 60);
        assert_eq!(a.registry.hist("lookup.hops").unwrap().sum(), a.total_hops);
        assert_eq!(a.span_hops(), a.total_hops, "spans reconcile with aggregates");
        assert!(a.registry.counter("net.deliver.find_succ") > 0);
    }
}
