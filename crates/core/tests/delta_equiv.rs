//! Delta-vs-full byte-identity fuzz.
//!
//! The incremental maintenance contract: applying a churn batch onto
//! an existing hierarchy ([`HierasOracle::apply_delta_on`]) produces a
//! hierarchy **byte-identical** to rebuilding from scratch over the
//! post-batch membership ([`HierasOracle::build_members_on`]) — same
//! ring arenas, same ring numbering, same ring tables, same digest —
//! at any executor width. This harness drives a long random churn
//! history (joins, leaves, re-bins, whole-stub-domain removals) both
//! ways at 1, 2 and 8 threads and asserts the identity at every step.

use hieras_core::{
    Binning, HierasConfig, HierasDelta, HierasOracle, LandmarkOrder, RingArenaPool,
};
use hieras_id::{Id, IdSpace};
use hieras_rt::{splitmix64, Executor};
use std::sync::Arc;

const NODES: u32 = 64;
const ROUNDS: u64 = 16;

/// Deterministic PRNG stream: `n`-th draw of stream `seed`.
fn rng(seed: u64, n: u64) -> u64 {
    splitmix64(seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Landmark-order profiles the fuzz draws from: five stub domains
/// (level digits in the paper's 0/1/2 alphabet, three landmarks).
fn profile(i: u64) -> LandmarkOrder {
    let digits = match i % 5 {
        0 => vec![0, 0, 0],
        1 => vec![2, 2, 2],
        2 => vec![0, 2, 2],
        3 => vec![2, 0, 0],
        _ => vec![1, 1, 2],
    };
    LandmarkOrder(digits)
}

struct World {
    space: IdSpace,
    ids: Arc<[Id]>,
    config: HierasConfig,
}

fn world() -> World {
    let ids: Arc<[Id]> = (0..u64::from(NODES))
        .map(|i| Id(splitmix64(i ^ 0x5eed_cafe)))
        .collect::<Vec<_>>()
        .into();
    World {
        space: IdSpace::full(),
        ids,
        config: HierasConfig { depth: 2, landmarks: 3, binning: Binning::paper() },
    }
}

/// One scripted churn history: returns the digest of every published
/// hierarchy, asserting delta-vs-full identity at each step.
#[allow(clippy::too_many_lines)]
fn run_history(exec: &Executor, seed: u64) -> Vec<u64> {
    let w = world();
    let mut orders: Vec<LandmarkOrder> =
        (0..u64::from(NODES)).map(|i| profile(rng(seed, i))).collect();
    let mut live: Vec<bool> = (0..NODES).map(|m| rng(seed ^ 1, u64::from(m)) % 4 != 0).collect();
    live[0] = true; // never start empty
    let members = |live: &[bool]| -> Vec<u32> {
        (0..NODES).filter(|&m| live[m as usize]).collect()
    };
    let mut cur = HierasOracle::build_members_on(
        exec,
        w.space,
        Arc::clone(&w.ids),
        orders.clone(),
        &members(&live),
        w.config.clone(),
    )
    .expect("seed membership builds");
    let mut pool = RingArenaPool::new(64);
    let mut digests = vec![cur.hierarchy_digest()];
    for round in 0..ROUNDS {
        let r = |n: u64| rng(seed ^ 0xf00d ^ (round << 16), n);
        let mut joined: Vec<u32> = Vec::new();
        let mut departed: Vec<u32> = Vec::new();
        let mut rebinned: Vec<u32> = Vec::new();
        // Joins: up to 3 dead nodes come back (their order may have
        // drifted while dead — adopted silently with the join).
        for n in 0..3 {
            let m = (r(n) % u64::from(NODES)) as u32;
            if !live[m as usize] && !joined.contains(&m) {
                joined.push(m);
                live[m as usize] = true;
                if r(n ^ 0xa) % 2 == 0 {
                    orders[m as usize] = profile(r(n ^ 0xb));
                }
            }
        }
        // Every fourth round, a whole stub domain fails at once: every
        // live member binned to one profile departs together — the
        // "ring death" path, where the delta must drop entire rings.
        if round % 4 == 3 {
            let doomed = profile(r(100));
            for m in 0..NODES {
                if live[m as usize]
                    && !joined.contains(&m)
                    && orders[m as usize] == doomed
                    && members(&live).len() > 4
                {
                    departed.push(m);
                    live[m as usize] = false;
                }
            }
        }
        // Leaves: up to 3 individual departures.
        for n in 10..13 {
            let m = (r(n) % u64::from(NODES)) as u32;
            if live[m as usize]
                && !joined.contains(&m)
                && !departed.contains(&m)
                && members(&live).len() > 2
            {
                departed.push(m);
                live[m as usize] = false;
            }
        }
        // Re-bins: up to 3 surviving members move to a new stub domain
        // (possibly the same one — a declared no-op re-bin is legal).
        for n in 20..23 {
            let m = (r(n) % u64::from(NODES)) as u32;
            if live[m as usize]
                && !joined.contains(&m)
                && !rebinned.contains(&m)
            {
                rebinned.push(m);
                orders[m as usize] = profile(r(n ^ 0xc));
            }
        }
        let delta = HierasDelta {
            joined: &joined,
            departed: &departed,
            rebinned: &rebinned,
        };
        let inc = cur
            .apply_delta_on(exec, &delta, &orders, &mut pool)
            .expect("recorded churn batches are valid deltas");
        let full = HierasOracle::build_members_on(
            exec,
            w.space,
            Arc::clone(&w.ids),
            orders.clone(),
            &members(&live),
            w.config.clone(),
        )
        .expect("post-batch membership builds");
        // Byte identity: every arena, numbering and table — compressed
        // into the hierarchy digest — plus routing parity over a key
        // sample, from every live member.
        assert_eq!(
            inc.hierarchy_digest(),
            full.hierarchy_digest(),
            "round {round}: delta diverged from full rebuild \
             (+{joined:?} -{departed:?} ~{rebinned:?})"
        );
        let alive = members(&live);
        for k in 0..25u64 {
            let key = Id(rng(seed ^ 0xab5e, k));
            assert_eq!(inc.owner_of(key), full.owner_of(key), "round {round} key {k}");
            let src = alive[(k as usize) % alive.len()];
            let (a, b) = (inc.route(src, key), full.route(src, key));
            assert_eq!(a.hop_count(), b.hop_count(), "round {round} src {src} key {k}");
            assert_eq!(a.destination(), b.destination());
        }
        digests.push(full.hierarchy_digest());
        cur = inc;
    }
    digests
}

#[test]
fn random_churn_histories_are_identical_delta_or_full_at_any_width() {
    let mut baselines: Vec<Vec<u64>> = Vec::new();
    for seed in [0x0a11_5eed_u64, 0xd15c_0bee] {
        let d1 = run_history(&Executor::new(1), seed);
        assert!(d1.len() as u64 == ROUNDS + 1);
        baselines.push(d1);
    }
    for width in [2usize, 8] {
        let exec = Executor::new(width);
        for (i, seed) in [0x0a11_5eed_u64, 0xd15c_0bee].into_iter().enumerate() {
            let d = run_history(&exec, seed);
            assert_eq!(
                d, baselines[i],
                "digest history diverged at {width} threads (seed {seed:#x})"
            );
        }
    }
}
