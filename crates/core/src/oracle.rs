//! Oracle-mode HIERAS: multi-layer finger tables and m-loop routing.
//!
//! Layer numbering follows the paper: **layer 1** is the single global
//! ring containing every peer; **layer m** (= the configured depth) is
//! the lowest layer, whose rings are named by the full landmark order.
//! Every layer reuses [`hieras_chord::RingView`] — the "underlying DHT
//! routing algorithm with the corresponding finger table" of §3.2 —
//! restricted to the ring's membership.

use crate::{ConfigError, HierasConfig, LandmarkOrder, RingTable, RouteTrace};
use crate::trace::{HopRecord, RouteCost};
use hieras_chord::{PathBuf, RingArenaPool, RingBuildError, RingView};
use hieras_id::{Id, IdSpace, Key};
use hieras_rt::{splitmix64, Executor};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Errors building a [`HierasOracle`].
#[derive(Debug, Clone, PartialEq)]
pub enum HierasBuildError {
    /// Invalid configuration.
    Config(ConfigError),
    /// Ring construction failed (duplicate ids, empty membership…).
    Ring(RingBuildError),
    /// `orders.len() != ids.len()`.
    OrderCount {
        /// Number of node ids supplied.
        expected: usize,
        /// Number of landmark orders supplied.
        got: usize,
    },
    /// A landmark order has fewer digits than the configured landmark
    /// count — the lowest layer could not be named.
    OrderTooShort {
        /// Offending node index.
        node: u32,
        /// Digits present.
        got: usize,
        /// Digits required (`config.landmarks`).
        need: usize,
    },
    /// A live member's landmark order changed without the node being
    /// declared in the delta's `rebinned` (or `joined`) set — applying
    /// the delta would silently diverge from a full rebuild.
    UndeclaredRebin {
        /// The member whose order moved undeclared.
        node: u32,
    },
}

impl core::fmt::Display for HierasBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HierasBuildError::Config(e) => write!(f, "bad config: {e}"),
            HierasBuildError::Ring(e) => write!(f, "ring construction failed: {e}"),
            HierasBuildError::OrderCount { expected, got } => {
                write!(f, "expected {expected} landmark orders, got {got}")
            }
            HierasBuildError::OrderTooShort { node, got, need } => {
                write!(f, "node {node} has {got}-digit order, need {need}")
            }
            HierasBuildError::UndeclaredRebin { node } => {
                write!(f, "member {node} changed order without being declared rebinned")
            }
        }
    }
}

impl std::error::Error for HierasBuildError {}

impl From<ConfigError> for HierasBuildError {
    fn from(e: ConfigError) -> Self {
        HierasBuildError::Config(e)
    }
}

impl From<RingBuildError> for HierasBuildError {
    fn from(e: RingBuildError) -> Self {
        HierasBuildError::Ring(e)
    }
}

/// Aggregate packed-routing-state footprint over the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingArenaStats {
    /// Total rings across all layers (layer 1 contributes one).
    pub rings: usize,
    /// Total member slots across all ring arenas (each node appears
    /// once per layer, so this is ≈ nodes × depth).
    pub member_slots: usize,
    /// Total bytes of packed routing state (member indices, id arenas,
    /// seek indices) across all rings.
    pub bytes: usize,
}

/// One hierarchy layer: the disjoint rings partitioning all peers.
///
/// Rings are held behind per-ring [`Arc`]s so epochs of a serving
/// hierarchy share untouched rings structurally: a delta application
/// copies only the rings whose membership or binning moved and bumps a
/// reference count for every other one.
#[derive(Debug, Clone)]
pub struct Layer {
    /// 1-based layer number (1 = global).
    pub layer_no: usize,
    /// The rings of this layer, individually shareable across epochs.
    rings: Vec<Arc<RingView>>,
    /// Ring names (order-string prefixes), parallel to `rings`.
    names: Vec<LandmarkOrder>,
    /// Ring index (into `rings`) of each global node; shared across
    /// epochs whose membership at this layer did not move.
    ring_of_node: Arc<[u32]>,
}

impl Layer {
    /// Number of rings in this layer.
    #[must_use]
    pub fn ring_count(&self) -> usize {
        self.rings.len()
    }

    /// The ring containing global node `node`.
    ///
    /// # Panics
    /// Panics if `node` is not part of this hierarchy (subset builds
    /// via [`HierasOracle::build_members_on`] exclude dead nodes).
    #[must_use]
    pub fn ring_of(&self, node: u32) -> &RingView {
        &self.rings[self.ring_of_node[node as usize] as usize]
    }

    /// The name of the ring containing `node`.
    #[must_use]
    pub fn ring_name_of(&self, node: u32) -> &LandmarkOrder {
        &self.names[self.ring_of_node[node as usize] as usize]
    }

    /// Ring index of `node` at this layer, or `None` for a non-member.
    #[must_use]
    pub fn ring_index_of(&self, node: u32) -> Option<u32> {
        match self.ring_of_node.get(node as usize) {
            Some(&r) if r != u32::MAX => Some(r),
            _ => None,
        }
    }

    /// Iterates `(name, ring)` pairs.
    pub fn rings(&self) -> impl Iterator<Item = (&LandmarkOrder, &RingView)> {
        self.names.iter().zip(self.rings.iter().map(|r| &**r))
    }

    /// Shared handles of this layer's rings, parallel to the sorted
    /// name list — lets diagnostics observe cross-epoch structural
    /// sharing (`Arc::ptr_eq` on corresponding rings).
    #[must_use]
    pub fn ring_arcs(&self) -> &[Arc<RingView>] {
        &self.rings
    }
}

/// One row of a node's (multi-layer) finger table, as in the paper's
/// Table 2: the finger start, the interval it covers, and the
/// successor chosen in every layer's ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerRow {
    /// `n + 2^i`.
    pub start: Id,
    /// End of the covered interval `[start, end)` = next finger start.
    pub end: Id,
    /// Successor node per layer: `successors[j-1]` is the layer-`j`
    /// finger target (global node index).
    pub successors: Vec<u32>,
}

/// HIERAS over a known membership: every peer's ring memberships and
/// per-layer finger tables, plus the ring tables, built centrally.
#[derive(Debug, Clone)]
pub struct HierasOracle {
    space: IdSpace,
    ids: Arc<[Id]>,
    config: HierasConfig,
    /// Per-node landmark orders; shared across epochs whose binning
    /// did not move (delta applications clone-and-patch only when a
    /// join or re-bin changed an entry).
    orders: Arc<[LandmarkOrder]>,
    /// `layers[j-1]` is layer `j`; `layers[0]` is the global ring.
    layers: Vec<Layer>,
    /// Ring tables of every non-global ring, keyed by ring name.
    ring_tables: HashMap<String, RingTable>,
}

/// One epoch's membership/binning movement, in global node indices.
/// The three sets must be disjoint; `rebinned` nodes stay live but
/// changed landmark order.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierasDelta<'a> {
    /// Nodes that came up this epoch (must not be current members).
    pub joined: &'a [u32],
    /// Members that departed or failed this epoch.
    pub departed: &'a [u32],
    /// Members whose landmark order changed this epoch.
    pub rebinned: &'a [u32],
}

impl HierasDelta<'_> {
    /// True when the delta moves nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.joined.is_empty() && self.departed.is_empty() && self.rebinned.is_empty()
    }
}

/// How much of the hierarchy a delta would touch — the serve
/// maintainer's cheap eligibility probe for the incremental path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaStats {
    /// Rings whose membership the delta moves (born and dying rings
    /// included), across all layers.
    pub touched_rings: usize,
    /// Total rings in the current hierarchy.
    pub total_rings: usize,
}

impl DeltaStats {
    /// Touched fraction of the hierarchy, in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total_rings == 0 {
            return 0.0;
        }
        self.touched_rings as f64 / self.total_rings as f64
    }
}

impl HierasOracle {
    /// Builds the hierarchy from per-node landmark orders.
    ///
    /// `orders[i]` must carry at least `config.landmarks` digits (extra
    /// digits are ignored); produce them with
    /// [`crate::Binning::order`] from measured landmark RTTs.
    ///
    /// # Errors
    /// See [`HierasBuildError`].
    pub fn build(
        space: IdSpace,
        ids: Arc<[Id]>,
        orders: Vec<LandmarkOrder>,
        config: HierasConfig,
    ) -> Result<Self, HierasBuildError> {
        Self::build_on(&Executor::default(), space, ids, orders, config)
    }

    /// [`HierasOracle::build`] on a caller-supplied executor.
    ///
    /// The per-layer ring grouping runs in parallel across layers and
    /// every ring's finger table builds in parallel across rings (the
    /// global ring additionally fills its table in parallel inside
    /// [`RingView::build_on`]). Each unit of work is a pure function
    /// of the inputs and results merge in deterministic chunk order,
    /// so the hierarchy is bit-identical at any thread count.
    ///
    /// # Errors
    /// See [`HierasBuildError`].
    pub fn build_on(
        exec: &Executor,
        space: IdSpace,
        ids: Arc<[Id]>,
        orders: Vec<LandmarkOrder>,
        config: HierasConfig,
    ) -> Result<Self, HierasBuildError> {
        let members: Vec<u32> = (0..ids.len() as u32).collect();
        Self::build_members_on(exec, space, ids, orders, &members, config)
    }

    /// [`HierasOracle::build_on`] restricted to a *subset* of the node
    /// table: only the global indices in `members` join the hierarchy
    /// (one global ring of the members, lower rings grouping members by
    /// landmark-order prefix). The id table and landmark orders stay
    /// global-sized, so routes, [`HierasOracle::eval`] link callbacks
    /// and [`HierasOracle::owner_of`] all speak global node indices —
    /// a churned snapshot drops straight into code written for the
    /// full-membership oracle.
    ///
    /// Only members' orders need `config.landmarks` digits; dead nodes'
    /// orders are never read. Routing *from* a non-member is a protocol
    /// violation and panics (the node has no ring), which is the guard
    /// the serving engine relies on to catch stale-source bugs.
    ///
    /// # Errors
    /// See [`HierasBuildError`]; an empty or out-of-range `members`
    /// surfaces as [`HierasBuildError::Ring`].
    pub fn build_members_on(
        exec: &Executor,
        space: IdSpace,
        ids: Arc<[Id]>,
        orders: Vec<LandmarkOrder>,
        members: &[u32],
        config: HierasConfig,
    ) -> Result<Self, HierasBuildError> {
        config.validate()?;
        if orders.len() != ids.len() {
            return Err(HierasBuildError::OrderCount { expected: ids.len(), got: orders.len() });
        }
        if members.is_empty() {
            return Err(HierasBuildError::Ring(RingBuildError::Empty));
        }
        for &m in members {
            let Some(o) = orders.get(m as usize) else {
                return Err(HierasBuildError::Ring(RingBuildError::BadIndex(m)));
            };
            if o.len() < config.landmarks {
                return Err(HierasBuildError::OrderTooShort {
                    node: m,
                    got: o.len(),
                    need: config.landmarks,
                });
            }
        }
        let n = ids.len();
        // Phase 1 — group members into rings, one independent job per
        // layer (chunk = 1 layer; merged in ascending layer order).
        struct LayerProto {
            layer_no: usize,
            names: Vec<LandmarkOrder>,
            members: Vec<Vec<u32>>,
            ring_of_node: Box<[u32]>,
        }
        let group_layer = |layer_no: usize| -> LayerProto {
            let plen = config.prefix_len(layer_no);
            let mut groups: HashMap<LandmarkOrder, Vec<u32>> = HashMap::new();
            for &i in members {
                groups.entry(orders[i as usize].prefix(plen)).or_default().push(i);
            }
            let mut names: Vec<LandmarkOrder> = groups.keys().cloned().collect();
            names.sort(); // deterministic ring numbering
            // Non-members keep u32::MAX, so `ring_of` on a dead node
            // trips an index panic instead of silently routing.
            let mut ring_of_node = vec![u32::MAX; n].into_boxed_slice();
            let members: Vec<Vec<u32>> = names
                .iter()
                .enumerate()
                .map(|(ri, name)| {
                    let members = groups.remove(name).expect("name came from groups");
                    for &m in &members {
                        ring_of_node[m as usize] = ri as u32;
                    }
                    members
                })
                .collect();
            LayerProto { layer_no, names, members, ring_of_node }
        };
        let protos: Vec<LayerProto> = exec.par_fold(
            config.depth,
            1,
            Vec::new,
            |acc, d| acc.push(group_layer(d + 1)),
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        // Phase 2 — build every ring of every layer. Rings are
        // independent; one job per ring, merged in (layer, ring) order.
        let jobs: Vec<(usize, usize)> = protos
            .iter()
            .enumerate()
            .flat_map(|(li, p)| (0..p.names.len()).map(move |ri| (li, ri)))
            .collect();
        let built: Vec<Result<RingView, RingBuildError>> = exec.par_fold(
            jobs.len(),
            1,
            Vec::new,
            |acc, j| {
                let (li, ri) = jobs[j];
                // Inner parallelism only pays off for the big rings
                // (the global ring); small rings build serially inside
                // their own job.
                acc.push(RingView::build_on(exec, space, Arc::clone(&ids), &protos[li].members[ri]));
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        let mut rings_by_job = built.into_iter();
        let mut layers = Vec::with_capacity(config.depth);
        for proto in protos {
            let mut rings = Vec::with_capacity(proto.names.len());
            for _ in 0..proto.names.len() {
                rings.push(Arc::new(rings_by_job.next().expect("one result per job")?));
            }
            layers.push(Layer {
                layer_no: proto.layer_no,
                rings,
                names: proto.names,
                ring_of_node: proto.ring_of_node.into(),
            });
        }
        // Ring tables for every non-global ring (§3.1): record all
        // members; the table itself keeps only the four extreme ids.
        let mut ring_tables = HashMap::new();
        for layer in layers.iter().skip(1) {
            for (name, ring) in layer.rings() {
                let table = ring_tables
                    .entry(name.name())
                    .or_insert_with(|| RingTable::new(name));
                for &m in ring.members() {
                    table.observe(ids[m as usize]);
                }
            }
        }
        Ok(HierasOracle { space, ids, config, orders: orders.into(), layers, ring_tables })
    }

    /// Convenience: builds from raw landmark RTT vectors using the
    /// configured binning.
    ///
    /// # Errors
    /// See [`HierasBuildError`].
    pub fn from_rtts(
        space: IdSpace,
        ids: Arc<[Id]>,
        rtts: &[Vec<u16>],
        config: HierasConfig,
    ) -> Result<Self, HierasBuildError> {
        let orders = rtts.iter().map(|r| config.binning.order(r)).collect();
        Self::build(space, ids, orders, config)
    }

    /// The identifier space.
    #[must_use]
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// The configuration this hierarchy was built with.
    #[must_use]
    pub fn config(&self) -> &HierasConfig {
        &self.config
    }

    /// Number of peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Never empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Id of node `node`.
    #[must_use]
    pub fn id_of(&self, node: u32) -> Id {
        self.ids[node as usize]
    }

    /// Landmark order of node `node`.
    #[must_use]
    pub fn order_of(&self, node: u32) -> &LandmarkOrder {
        &self.orders[node as usize]
    }

    /// The layers, top (global, layer 1) first.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Aggregate size of the packed routing state across every ring of
    /// every layer — the source feeding the `ring_arena.*` metrics. The
    /// whole routing fabric is these arenas plus the shared id table.
    #[must_use]
    pub fn arena_stats(&self) -> RingArenaStats {
        let mut stats = RingArenaStats { rings: 0, member_slots: 0, bytes: 0 };
        for layer in &self.layers {
            for (_, ring) in layer.rings() {
                stats.rings += 1;
                stats.member_slots += ring.len();
                stats.bytes += ring.arena_bytes();
            }
        }
        stats
    }

    /// The global ring (layer 1).
    #[must_use]
    pub fn global_ring(&self) -> &RingView {
        &self.layers[0].rings[0]
    }

    /// Global node index owning `key` (ground truth = Chord owner).
    #[must_use]
    pub fn owner_of(&self, key: Key) -> u32 {
        let g = self.global_ring();
        g.node_at(g.successor_of_key(key))
    }

    /// The ring table of the ring named `name`, if that ring exists.
    #[must_use]
    pub fn ring_table(&self, name: &str) -> Option<&RingTable> {
        self.ring_tables.get(name)
    }

    /// All ring tables (for diagnostics and the Table 3 figure).
    #[must_use]
    pub fn ring_tables(&self) -> &HashMap<String, RingTable> {
        &self.ring_tables
    }

    /// The node that *stores* a ring table: the one whose id is
    /// numerically closest to the ring id — i.e. the Chord owner of
    /// `ring_id` on the global ring (§3.1).
    #[must_use]
    pub fn ring_table_holder(&self, ring_id: Id) -> u32 {
        self.owner_of(ring_id)
    }

    /// Routes `key` from `src` with the paper's m-loop procedure
    /// (§3.2): finish in the lowest-layer ring of the current node,
    /// check whether the current node is already the destination, and
    /// otherwise continue one layer up with that layer's finger table.
    ///
    /// Lower layers route to the closest *preceding* ring member of the
    /// key and hand off there; only the global ring takes the delivery
    /// hop to the owner. Handing off at the ring-local owner instead
    /// would overshoot the key in id space and force the next layer to
    /// route nearly the whole circle.
    ///
    /// # Panics
    /// Panics if `src` is out of range.
    #[must_use]
    pub fn route(&self, src: u32, key: Key) -> RouteTrace {
        let mut trace = RouteTrace { origin: src, hops: Vec::with_capacity(8) };
        let mut scratch = PathBuf::new();
        self.route_with(src, key, &mut scratch, |from, to, layer| {
            trace.hops.push(HopRecord { from, to, layer });
        });
        trace
    }

    /// Visitor core of the m-loop procedure: walks the exact hop
    /// sequence [`HierasOracle::route`] records, calling
    /// `on_hop(from, to, layer)` per hop with global node indices, and
    /// returns the node the key resolved to. Per-layer ring paths are
    /// written into `scratch`, so a caller that reuses one scratch
    /// across lookups routes without heap allocation in steady state.
    ///
    /// # Panics
    /// Panics if `src` is out of range.
    pub fn route_with<F>(&self, src: u32, key: Key, scratch: &mut PathBuf, mut on_hop: F) -> u32
    where
        F: FnMut(u32, u32, u8),
    {
        assert!((src as usize) < self.ids.len(), "src out of range");
        let owner = self.owner_of(key);
        let mut cur = src;
        // Lowest layer first: layers[depth-1] … layers[0].
        for layer in self.layers.iter().rev() {
            // The destination check that ends each loop early (§3.2).
            if cur == owner {
                return cur;
            }
            let ring = layer.ring_of(cur);
            let pos = ring.position_of(cur).expect("node is member of its own ring");
            if layer.layer_no == 1 {
                ring.route_into(pos, key, scratch);
            } else {
                ring.route_to_predecessor_into(pos, key, scratch);
            }
            let path = scratch.as_slice();
            for w in path.windows(2) {
                on_hop(ring.node_at(w[0]), ring.node_at(w[1]), layer.layer_no as u8);
            }
            cur = ring.node_at(*path.last().expect("path never empty"));
        }
        debug_assert_eq!(cur, owner, "global loop must end at the key's owner");
        cur
    }

    /// Routes `key` from `src` and condenses the trace into a
    /// [`RouteCost`] on the fly — the replay hot path. `link` supplies
    /// per-hop latency (typically `LatencyOracle::latency` over
    /// attachment routers). Produces exactly the quantities
    /// [`HierasOracle::route`] + [`RouteTrace::latency_split`] would,
    /// without materializing the trace.
    ///
    /// # Panics
    /// Panics if `src` is out of range.
    pub fn eval(
        &self,
        src: u32,
        key: Key,
        scratch: &mut PathBuf,
        mut link: impl FnMut(u32, u32) -> u16,
    ) -> RouteCost {
        let mut cost = RouteCost::default();
        let dest = self.route_with(src, key, scratch, |from, to, layer| {
            let l = u64::from(link(from, to));
            cost.hops += 1;
            cost.latency_ms += l;
            if layer > 1 {
                cost.lower_hops += 1;
                cost.lower_latency_ms += l;
            }
        });
        cost.destination = dest;
        cost
    }

    /// The multi-layer finger table of `node`, one [`FingerRow`] per
    /// finger index — the paper's Table 2. Rows whose interval is
    /// empty (tiny demo spaces) are still emitted, matching the paper's
    /// fixed `bits` rows.
    #[must_use]
    pub fn finger_rows(&self, node: u32) -> Vec<FingerRow> {
        let me = self.id_of(node);
        let bits = self.space.bits();
        let mut rows = Vec::with_capacity(bits as usize);
        for i in 0..bits {
            let start = self.space.finger_start(me, i);
            let end = if i + 1 < bits {
                self.space.finger_start(me, i + 1)
            } else {
                me
            };
            let successors = self
                .layers
                .iter()
                .map(|layer| {
                    let ring = layer.ring_of(node);
                    ring.node_at(ring.successor_of_key(start))
                })
                .collect();
            rows.push(FingerRow { start, end, successors });
        }
        rows
    }

    /// Per-ring movement of a delta at one layer, keyed by ring name
    /// (sorted): `name → (removals, insertions)`. Departures group
    /// under the node's *old* order (the one it was grouped by),
    /// joins under the *new* one; a re-bin whose prefix is unchanged
    /// at this layer touches nothing.
    ///
    /// # Panics
    /// Panics if the delta names out-of-range nodes (the public
    /// callers validate first).
    fn layer_changes(
        &self,
        plen: usize,
        delta: &HierasDelta<'_>,
        orders: &[LandmarkOrder],
    ) -> BTreeMap<LandmarkOrder, (Vec<u32>, Vec<u32>)> {
        let mut changes: BTreeMap<LandmarkOrder, (Vec<u32>, Vec<u32>)> = BTreeMap::new();
        for &m in delta.departed {
            changes.entry(self.orders[m as usize].prefix(plen)).or_default().0.push(m);
        }
        for &m in delta.joined {
            changes.entry(orders[m as usize].prefix(plen)).or_default().1.push(m);
        }
        for &m in delta.rebinned {
            let old = self.orders[m as usize].prefix(plen);
            let new = orders[m as usize].prefix(plen);
            if old != new {
                changes.entry(old).or_default().0.push(m);
                changes.entry(new).or_default().1.push(m);
            }
        }
        changes
    }

    /// How many rings `delta` would touch versus the hierarchy total —
    /// the cheap (`O(|delta| · depth)` ring-name hashing, no builds)
    /// probe the serve maintainer uses to pick the incremental path
    /// when the churn batch is local and fall back to a full rebuild
    /// when it is not.
    ///
    /// # Panics
    /// Panics if the delta names out-of-range nodes.
    #[must_use]
    pub fn delta_touch_stats(&self, delta: &HierasDelta<'_>, orders: &[LandmarkOrder]) -> DeltaStats {
        let mut touched = 0usize;
        let mut total = 0usize;
        for layer in &self.layers {
            total += layer.rings.len();
            let plen = self.config.prefix_len(layer.layer_no);
            touched += self.layer_changes(plen, delta, orders).len();
        }
        DeltaStats { touched_rings: touched, total_rings: total }
    }

    /// Applies one epoch's membership/binning delta, producing a new
    /// hierarchy **byte-identical** to
    /// [`HierasOracle::build_members_on`] over the post-delta
    /// membership and `orders` — at a cost proportional to the delta,
    /// not the network. Untouched rings are structurally shared with
    /// `self` (their [`Arc`]s are cloned); only rings whose membership
    /// or binning moved are copied, via [`RingView::apply_delta_on`]
    /// (with arenas recycled through `pool`), born rings are built
    /// fresh, and emptied rings disappear. Ring tables are recomputed
    /// for touched ring names only.
    ///
    /// `orders` is the caller's full (global-sized) order table after
    /// this epoch's re-binning; entries may differ from the builder's
    /// copy only for `joined`/`rebinned`/dead nodes.
    ///
    /// # Errors
    /// See [`HierasBuildError`]; notably
    /// [`HierasBuildError::UndeclaredRebin`] when a live member's
    /// order moved without being declared, and ring-level errors for
    /// joins of existing members or departures of non-members.
    pub fn apply_delta_on(
        &self,
        exec: &Executor,
        delta: &HierasDelta<'_>,
        orders: &[LandmarkOrder],
        pool: &mut RingArenaPool,
    ) -> Result<Self, HierasBuildError> {
        if orders.len() != self.ids.len() {
            return Err(HierasBuildError::OrderCount {
                expected: self.ids.len(),
                got: orders.len(),
            });
        }
        for &m in delta.joined.iter().chain(delta.rebinned).chain(delta.departed) {
            if (m as usize) >= self.ids.len() {
                return Err(HierasBuildError::Ring(RingBuildError::BadIndex(m)));
            }
        }
        for &m in delta.joined.iter().chain(delta.rebinned) {
            let o = &orders[m as usize];
            if o.len() < self.config.landmarks {
                return Err(HierasBuildError::OrderTooShort {
                    node: m,
                    got: o.len(),
                    need: self.config.landmarks,
                });
            }
        }
        for &m in delta.rebinned {
            if self.layers[0].ring_index_of(m).is_none() {
                return Err(HierasBuildError::Ring(RingBuildError::NotAMember(m)));
            }
        }
        // Order-table sync: adopt `orders` wholesale when any entry
        // moved. A live member moving undeclared is misuse — sharing
        // its rings would silently diverge from a full rebuild.
        let mut orders_changed = false;
        for (i, o) in orders.iter().enumerate() {
            if *o != self.orders[i] {
                let node = i as u32;
                let declared = delta.rebinned.contains(&node)
                    || delta.joined.contains(&node)
                    || delta.departed.contains(&node);
                if !declared && self.layers[0].ring_index_of(node).is_some() {
                    return Err(HierasBuildError::UndeclaredRebin { node });
                }
                orders_changed = true;
            }
        }
        let new_orders: Arc<[LandmarkOrder]> = if orders_changed {
            orders.to_vec().into()
        } else {
            Arc::clone(&self.orders)
        };
        let mut new_layers = Vec::with_capacity(self.layers.len());
        let mut touched_names: Vec<LandmarkOrder> = Vec::new();
        for layer in &self.layers {
            let plen = self.config.prefix_len(layer.layer_no);
            let changes = self.layer_changes(plen, delta, orders);
            if changes.is_empty() {
                // Nothing moved at this layer: share it outright.
                new_layers.push(layer.clone());
                continue;
            }
            if layer.layer_no > 1 {
                touched_names.extend(changes.keys().cloned());
            }
            // Rings born this epoch: changed names with no current ring.
            let mut born: Vec<(&LandmarkOrder, &Vec<u32>)> = Vec::new();
            for (name, (rem, ins)) in &changes {
                if layer.names.binary_search(name).is_err() {
                    if let Some(&m) = rem.first() {
                        return Err(HierasBuildError::Ring(RingBuildError::NotAMember(m)));
                    }
                    born.push((name, ins));
                }
            }
            // Merge old (surviving/delta'd) and born rings in sorted
            // name order — the numbering a full rebuild produces.
            let mut new_names: Vec<LandmarkOrder> = Vec::with_capacity(layer.names.len() + born.len());
            let mut new_rings: Vec<Arc<RingView>> = Vec::with_capacity(layer.rings.len() + born.len());
            let mut old_to_new: Vec<u32> = vec![u32::MAX; layer.names.len()];
            let mut bi = 0usize;
            let spawn = |name: &LandmarkOrder,
                             ins: &[u32],
                             names: &mut Vec<LandmarkOrder>,
                             rings: &mut Vec<Arc<RingView>>|
             -> Result<(), RingBuildError> {
                let ring = RingView::build_on(exec, self.space, Arc::clone(&self.ids), ins)?;
                names.push(name.clone());
                rings.push(Arc::new(ring));
                Ok(())
            };
            for (oi, name) in layer.names.iter().enumerate() {
                while bi < born.len() && born[bi].0 < name {
                    spawn(born[bi].0, born[bi].1, &mut new_names, &mut new_rings)?;
                    bi += 1;
                }
                let old = &layer.rings[oi];
                match changes.get(name) {
                    None => {
                        old_to_new[oi] = new_names.len() as u32;
                        new_names.push(name.clone());
                        new_rings.push(Arc::clone(old));
                    }
                    Some((rem, ins)) => {
                        if ins.is_empty() && rem.len() == old.len() {
                            let mut pos: Vec<u32> = Vec::with_capacity(rem.len());
                            for &m in rem {
                                pos.push(
                                    old.position_of(m).ok_or(RingBuildError::NotAMember(m))?,
                                );
                            }
                            pos.sort_unstable();
                            pos.dedup();
                            if pos.len() == old.len() {
                                continue; // the ring emptied and disappears
                            }
                        }
                        let ring = old.apply_delta_on(exec, rem, ins, pool)?;
                        old_to_new[oi] = new_names.len() as u32;
                        new_names.push(name.clone());
                        new_rings.push(Arc::new(ring));
                    }
                }
            }
            while bi < born.len() {
                spawn(born[bi].0, born[bi].1, &mut new_names, &mut new_rings)?;
                bi += 1;
            }
            if new_rings.is_empty() {
                return Err(HierasBuildError::Ring(RingBuildError::Empty));
            }
            // Re-point every node at its (possibly renumbered) ring.
            let mut map: Vec<u32> = layer
                .ring_of_node
                .iter()
                .map(|&r| if r == u32::MAX { u32::MAX } else { old_to_new[r as usize] })
                .collect();
            for &m in delta.departed {
                map[m as usize] = u32::MAX;
            }
            for &m in delta.joined.iter().chain(delta.rebinned) {
                let name = orders[m as usize].prefix(plen);
                let ri = new_names
                    .binary_search(&name)
                    .expect("a joined/re-binned node's target ring exists");
                map[m as usize] = ri as u32;
            }
            new_layers.push(Layer {
                layer_no: layer.layer_no,
                rings: new_rings,
                names: new_names,
                ring_of_node: map.into(),
            });
        }
        // Ring tables: recompute touched names only, replaying the
        // full build's layer-ordered observation sequence for each.
        let mut ring_tables = self.ring_tables.clone();
        touched_names.sort();
        touched_names.dedup();
        for name in &touched_names {
            ring_tables.remove(&name.name());
        }
        for name in &touched_names {
            for layer in new_layers.iter().skip(1) {
                if let Ok(ri) = layer.names.binary_search(name) {
                    let table = ring_tables
                        .entry(name.name())
                        .or_insert_with(|| RingTable::new(name));
                    for &m in layer.rings[ri].members() {
                        table.observe(self.ids[m as usize]);
                    }
                }
            }
        }
        Ok(HierasOracle {
            space: self.space,
            ids: Arc::clone(&self.ids),
            config: self.config.clone(),
            orders: new_orders,
            layers: new_layers,
            ring_tables,
        })
    }

    /// Order-sensitive digest of everything routing-visible — ring
    /// names, packed arenas, node→ring maps, ring tables (sorted by
    /// name), and the order table. Two oracles with equal digests
    /// route identically; the delta-vs-full identity gates chain this
    /// across whole runs.
    #[must_use]
    pub fn hierarchy_digest(&self) -> u64 {
        let mut h = splitmix64(0x48ae_5a11_d161_57a1 ^ self.layers.len() as u64);
        for layer in &self.layers {
            h = splitmix64(h ^ layer.layer_no as u64);
            for (name, ring) in layer.rings() {
                for &d in &name.0 {
                    h = splitmix64(h ^ u64::from(d) ^ 0x1111);
                }
                h = splitmix64(h ^ ring.arena_digest());
            }
            for &r in layer.ring_of_node.iter() {
                h = splitmix64(h ^ u64::from(r));
            }
        }
        let mut table_names: Vec<&String> = self.ring_tables.keys().collect();
        table_names.sort();
        for n in table_names {
            let t = &self.ring_tables[n];
            for b in n.bytes() {
                h = splitmix64(h ^ u64::from(b));
            }
            h = splitmix64(h ^ t.ring_id.0);
            for &m in t.entry_points() {
                h = splitmix64(h ^ m.0);
            }
        }
        for o in self.orders.iter() {
            h = splitmix64(h ^ o.0.len() as u64);
            for &d in &o.0 {
                h = splitmix64(h ^ u64::from(d));
            }
        }
        h
    }

    /// Dismantles this hierarchy into `pool`, salvaging the arena
    /// allocations of every ring this oracle was the last owner of
    /// (rings still shared with a newer epoch just drop their
    /// reference). The epoch publisher calls this on reclaimed
    /// snapshots so steady-state publishing stops round-tripping arena
    /// buffers through the allocator.
    pub fn recycle_into(self, pool: &mut RingArenaPool) {
        for layer in self.layers {
            for ring in layer.rings {
                if let Ok(r) = Arc::try_unwrap(ring) {
                    r.recycle_into(pool);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Binning;

    /// Hand-built 2-layer system: 12 nodes, 2 landmarks, two bins.
    fn two_bin_system() -> (HierasOracle, Arc<[Id]>) {
        let space = IdSpace::full();
        let ids: Arc<[Id]> = (0..12u64)
            .map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect::<Vec<_>>()
            .into();
        // Even nodes near both landmarks ("00"), odd nodes far ("22").
        let rtts: Vec<Vec<u16>> = (0..12)
            .map(|i| if i % 2 == 0 { vec![5, 10] } else { vec![150, 200] })
            .collect();
        let config = HierasConfig { depth: 2, landmarks: 2, binning: Binning::paper() };
        let o = HierasOracle::from_rtts(space, Arc::clone(&ids), &rtts, config).unwrap();
        (o, ids)
    }

    #[test]
    fn builds_expected_ring_structure() {
        let (o, _) = two_bin_system();
        assert_eq!(o.layers().len(), 2);
        assert_eq!(o.layers()[0].ring_count(), 1);
        assert_eq!(o.layers()[1].ring_count(), 2);
        assert_eq!(o.global_ring().len(), 12);
        // Each lower ring holds the 6 even or 6 odd nodes.
        for (_, ring) in o.layers()[1].rings() {
            assert_eq!(ring.len(), 6);
        }
        assert_eq!(o.layers()[1].ring_name_of(0).name(), "00");
        assert_eq!(o.layers()[1].ring_name_of(1).name(), "22");
    }

    #[test]
    fn route_agrees_with_chord_owner_for_all_keys() {
        let (o, _) = two_bin_system();
        for k in 0..200u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95).wrapping_add(k));
            let owner = o.owner_of(key);
            for src in 0..12u32 {
                let t = o.route(src, key);
                assert_eq!(t.destination(), owner, "src {src} key {k}");
                assert_eq!(t.origin, src);
            }
        }
    }

    #[test]
    fn route_uses_lower_layer_first() {
        let (o, _) = two_bin_system();
        let mut saw_lower = false;
        for k in 0..100u64 {
            let key = Id(k.wrapping_mul(0xdead_beef_1234_5678));
            let t = o.route(0, key);
            // Layers must be non-increasing along the trace (lower layer
            // number = higher layer; we go lowest-first so recorded layer
            // numbers run high → low).
            for w in t.hops.windows(2) {
                assert!(w[0].layer >= w[1].layer, "layer order violated: {:?}", t.hops);
            }
            if t.lower_layer_hops() > 0 {
                saw_lower = true;
            }
        }
        assert!(saw_lower, "no request ever used the lower layer");
    }

    #[test]
    fn lower_layer_hops_stay_within_origin_ring() {
        let (o, _) = two_bin_system();
        for k in 0..100u64 {
            let key = Id(k.wrapping_mul(0xabcdef12_3456789b));
            let t = o.route(1, key); // odd node, ring "22"
            for h in t.hops.iter().filter(|h| h.layer == 2) {
                assert_eq!(h.from % 2, 1, "lower hop left the origin ring");
                assert_eq!(h.to % 2, 1, "lower hop left the origin ring");
            }
        }
    }

    #[test]
    fn depth1_is_plain_chord() {
        let space = IdSpace::full();
        let ids: Arc<[Id]> = (1..=20u64).map(|i| Id(i << 40)).collect::<Vec<_>>().into();
        let rtts: Vec<Vec<u16>> = (0..20).map(|_| vec![]).collect();
        let config = HierasConfig { depth: 1, landmarks: 0, binning: Binning::paper() };
        let o = HierasOracle::from_rtts(space, Arc::clone(&ids), &rtts, config).unwrap();
        let chord = hieras_chord::ChordOracle::build(space, ids).unwrap();
        for k in 0..100u64 {
            let key = Id(k.wrapping_mul(0x0123_4567_89ab_cdef));
            let t = o.route(3, key);
            let c = chord.lookup(3, key);
            assert_eq!(t.destination(), c.owner());
            assert_eq!(t.hop_count(), c.hops(), "key {k}");
            assert!(t.hops.iter().all(|h| h.layer == 1));
        }
    }

    #[test]
    fn build_rejects_mismatched_orders() {
        let space = IdSpace::full();
        let ids: Arc<[Id]> = vec![Id(1), Id(2)].into();
        let err = HierasOracle::build(
            space,
            Arc::clone(&ids),
            vec![LandmarkOrder(vec![0, 0])],
            HierasConfig { depth: 2, landmarks: 2, binning: Binning::paper() },
        )
        .unwrap_err();
        assert_eq!(err, HierasBuildError::OrderCount { expected: 2, got: 1 });
        let err = HierasOracle::build(
            space,
            ids,
            vec![LandmarkOrder(vec![0]), LandmarkOrder(vec![0, 1])],
            HierasConfig { depth: 2, landmarks: 2, binning: Binning::paper() },
        )
        .unwrap_err();
        assert_eq!(err, HierasBuildError::OrderTooShort { node: 0, got: 1, need: 2 });
    }

    #[test]
    fn ring_tables_cover_all_lower_rings() {
        let (o, ids) = two_bin_system();
        assert_eq!(o.ring_tables().len(), 2);
        let t = o.ring_table("00").unwrap();
        assert_eq!(t.ring_name, "00");
        assert!(t.len() >= 1 && t.len() <= 4);
        // Every entry point is an even node's id.
        for ep in t.entry_points() {
            assert!(ids.iter().step_by(2).any(|i| i == ep));
        }
        // The holder is the global owner of the ring id.
        let holder = o.ring_table_holder(t.ring_id);
        assert_eq!(holder, o.owner_of(t.ring_id));
    }

    #[test]
    fn finger_rows_have_one_successor_per_layer() {
        let (o, _) = two_bin_system();
        let rows = o.finger_rows(4);
        assert_eq!(rows.len(), 64);
        for r in &rows {
            assert_eq!(r.successors.len(), 2);
            // Layer-2 successor stays in node 4's ring (even nodes).
            assert_eq!(r.successors[1] % 2, 0);
        }
    }

    #[test]
    fn deeper_hierarchies_nest_rings() {
        let space = IdSpace::full();
        let n = 30u64;
        let ids: Arc<[Id]> =
            (0..n).map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))).collect::<Vec<_>>().into();
        // 4 landmarks, varied bins.
        let rtts: Vec<Vec<u16>> = (0..n)
            .map(|i| {
                vec![
                    if i % 2 == 0 { 5 } else { 150 },
                    if i % 3 == 0 { 10 } else { 120 },
                    if i % 5 == 0 { 15 } else { 200 },
                    30,
                ]
            })
            .collect();
        let config = HierasConfig { depth: 3, landmarks: 4, binning: Binning::paper() };
        let o = HierasOracle::from_rtts(space, ids, &rtts, config).unwrap();
        assert_eq!(o.layers().len(), 3);
        // Nesting: all members of a layer-3 ring share their layer-2 ring.
        for node in 0..n as u32 {
            let l3 = o.layers()[2].ring_of(node);
            let my_l2 = o.layers()[1].ring_name_of(node);
            for &m in l3.members() {
                assert_eq!(o.layers()[1].ring_name_of(m), my_l2);
            }
        }
        // Routing still exact.
        for k in 0..60u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95));
            let t = o.route((k % n) as u32, key);
            assert_eq!(t.destination(), o.owner_of(key));
        }
    }

    fn two_bin_inputs() -> (IdSpace, Arc<[Id]>, Vec<LandmarkOrder>, HierasConfig) {
        let space = IdSpace::full();
        let ids: Arc<[Id]> = (0..12u64)
            .map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect::<Vec<_>>()
            .into();
        let binning = Binning::paper();
        let orders: Vec<LandmarkOrder> = (0..12)
            .map(|i| {
                let rtts: Vec<u16> =
                    if i % 2 == 0 { vec![5, 10] } else { vec![150, 200] };
                binning.order(&rtts)
            })
            .collect();
        let config = HierasConfig { depth: 2, landmarks: 2, binning };
        (space, ids, orders, config)
    }

    #[test]
    fn subset_build_matches_subset_chord_owner() {
        let (space, ids, orders, config) = two_bin_inputs();
        // Nodes 3 and 8 are dead; the rest form the hierarchy.
        let members: Vec<u32> = (0..12u32).filter(|&m| m != 3 && m != 8).collect();
        let o = HierasOracle::build_members_on(
            &Executor::default(),
            space,
            Arc::clone(&ids),
            orders,
            &members,
            config,
        )
        .unwrap();
        assert_eq!(o.global_ring().len(), 10);
        assert_eq!(o.len(), 12, "id table stays global-sized");
        // Ground truth: a Chord ring over the same subset.
        let chord = RingView::build(space, ids, &members).unwrap();
        for k in 0..200u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95).wrapping_add(k));
            let want = chord.node_at(chord.successor_of_key(key));
            assert_eq!(o.owner_of(key), want, "key {k}");
            for &src in &members {
                assert_eq!(o.route(src, key).destination(), want, "src {src} key {k}");
            }
        }
    }

    #[test]
    fn subset_build_rejects_empty_and_out_of_range_members() {
        let (space, ids, orders, config) = two_bin_inputs();
        let err = HierasOracle::build_members_on(
            &Executor::default(),
            space,
            Arc::clone(&ids),
            orders.clone(),
            &[],
            config.clone(),
        )
        .unwrap_err();
        assert_eq!(err, HierasBuildError::Ring(RingBuildError::Empty));
        let err = HierasOracle::build_members_on(
            &Executor::default(),
            space,
            ids,
            orders,
            &[0, 99],
            config,
        )
        .unwrap_err();
        assert_eq!(err, HierasBuildError::Ring(RingBuildError::BadIndex(99)));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn routing_from_a_dead_node_panics() {
        let (space, ids, orders, config) = two_bin_inputs();
        let members: Vec<u32> = (0..12u32).filter(|&m| m != 3).collect();
        let o = HierasOracle::build_members_on(
            &Executor::default(),
            space,
            ids,
            orders,
            &members,
            config,
        )
        .unwrap();
        let _ = o.route(3, Id(42));
    }

    /// Field-by-field structural equality: every ring arena, ring
    /// numbering, node→ring map and the whole-hierarchy digest.
    fn assert_same(a: &HierasOracle, b: &HierasOracle) {
        assert_eq!(a.layers().len(), b.layers().len());
        for (la, lb) in a.layers().iter().zip(b.layers()) {
            assert_eq!(la.ring_count(), lb.ring_count(), "layer {}", la.layer_no);
            for ((na, ra), (nb, rb)) in la.rings().zip(lb.rings()) {
                assert_eq!(na, nb, "layer {}", la.layer_no);
                assert_eq!(ra, rb, "layer {} ring {}", la.layer_no, na.name());
            }
            assert_eq!(&*la.ring_of_node, &*lb.ring_of_node, "layer {}", la.layer_no);
        }
        assert_eq!(a.hierarchy_digest(), b.hierarchy_digest());
    }

    #[test]
    fn delta_matches_full_rebuild_on_churn_batch() {
        let (space, ids, orders, config) = two_bin_inputs();
        let exec = Executor::default();
        let members: Vec<u32> = (0..12u32).filter(|&m| m != 5 && m != 8).collect();
        let base = HierasOracle::build_members_on(
            &exec,
            space,
            Arc::clone(&ids),
            orders.clone(),
            &members,
            config.clone(),
        )
        .unwrap();
        // One epoch: node 5 joins, node 2 leaves, node 4 re-bins to "22".
        let mut after = orders.clone();
        after[4] = LandmarkOrder(vec![2, 2]);
        let delta = HierasDelta { joined: &[5], departed: &[2], rebinned: &[4] };
        let inc = base
            .apply_delta_on(&exec, &delta, &after, &mut RingArenaPool::disabled())
            .unwrap();
        let post: Vec<u32> = (0..12u32).filter(|&m| m != 2 && m != 8).collect();
        let full = HierasOracle::build_members_on(
            &exec,
            space,
            Arc::clone(&ids),
            after,
            &post,
            config,
        )
        .unwrap();
        assert_same(&inc, &full);
        for k in 0..50u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95));
            assert_eq!(inc.owner_of(key), full.owner_of(key));
            assert_eq!(inc.route(4, key).hop_count(), full.route(4, key).hop_count());
        }
        // The untouched base survives unchanged (copy-on-write).
        assert!(base.layers()[0].ring_index_of(2).is_some());
        assert!(base.layers()[0].ring_index_of(5).is_none());
    }

    #[test]
    fn delta_handles_ring_death_and_birth() {
        let (space, ids, orders, config) = two_bin_inputs();
        let exec = Executor::default();
        let all: Vec<u32> = (0..12u32).collect();
        let base = HierasOracle::build_members_on(
            &exec,
            space,
            Arc::clone(&ids),
            orders.clone(),
            &all,
            config.clone(),
        )
        .unwrap();
        // Whole-stub-domain removal: every "22" node departs at once.
        let odds: Vec<u32> = (0..12u32).filter(|m| m % 2 == 1).collect();
        let delta = HierasDelta { departed: &odds, ..HierasDelta::default() };
        let inc = base
            .apply_delta_on(&exec, &delta, &orders, &mut RingArenaPool::disabled())
            .unwrap();
        let evens: Vec<u32> = (0..12u32).filter(|m| m % 2 == 0).collect();
        let full = HierasOracle::build_members_on(
            &exec,
            space,
            Arc::clone(&ids),
            orders.clone(),
            &evens,
            config.clone(),
        )
        .unwrap();
        assert_same(&inc, &full);
        assert_eq!(inc.layers()[1].ring_count(), 1, "ring 22 died");
        assert!(inc.ring_table("22").is_none(), "dead ring keeps no table");
        // Birth: node 1 rejoins under a brand-new order "11".
        let mut after = orders.clone();
        after[1] = LandmarkOrder(vec![1, 1]);
        let delta = HierasDelta { joined: &[1], ..HierasDelta::default() };
        let inc2 = inc
            .apply_delta_on(&exec, &delta, &after, &mut RingArenaPool::disabled())
            .unwrap();
        let post: Vec<u32> = (0..12u32).filter(|&m| m % 2 == 0 || m == 1).collect();
        let full2 = HierasOracle::build_members_on(
            &exec,
            space,
            Arc::clone(&ids),
            after,
            &post,
            config,
        )
        .unwrap();
        assert_same(&inc2, &full2);
        assert_eq!(inc2.layers()[1].ring_count(), 2, "ring 11 born");
        assert_eq!(inc2.ring_table("11").unwrap().len(), 1);
    }

    #[test]
    fn delta_validates_inputs() {
        let (space, ids, orders, config) = two_bin_inputs();
        let exec = Executor::default();
        let all: Vec<u32> = (0..12u32).collect();
        let o = HierasOracle::build_members_on(
            &exec,
            space,
            Arc::clone(&ids),
            orders.clone(),
            &all,
            config,
        )
        .unwrap();
        let mut pool = RingArenaPool::disabled();
        let err = o
            .apply_delta_on(&exec, &HierasDelta::default(), &orders[..5], &mut pool)
            .unwrap_err();
        assert_eq!(err, HierasBuildError::OrderCount { expected: 12, got: 5 });
        // A live member's order moved without being declared re-binned.
        let mut sneaky = orders.clone();
        sneaky[7] = LandmarkOrder(vec![0, 0]);
        let err = o
            .apply_delta_on(&exec, &HierasDelta::default(), &sneaky, &mut pool)
            .unwrap_err();
        assert_eq!(err, HierasBuildError::UndeclaredRebin { node: 7 });
        // ...but declaring it makes the same input valid.
        let delta = HierasDelta { rebinned: &[7], ..HierasDelta::default() };
        assert!(o.apply_delta_on(&exec, &delta, &sneaky, &mut pool).is_ok());
        // Re-binning a node that is not a member.
        let dead = HierasDelta { departed: &[7], ..HierasDelta::default() };
        let o2 = o.apply_delta_on(&exec, &dead, &orders, &mut pool).unwrap();
        let delta = HierasDelta { rebinned: &[7], ..HierasDelta::default() };
        let err = o2.apply_delta_on(&exec, &delta, &orders, &mut pool).unwrap_err();
        assert_eq!(err, HierasBuildError::Ring(RingBuildError::NotAMember(7)));
        // Out-of-range node indices.
        let delta = HierasDelta { joined: &[99], ..HierasDelta::default() };
        let err = o.apply_delta_on(&exec, &delta, &orders, &mut pool).unwrap_err();
        assert_eq!(err, HierasBuildError::Ring(RingBuildError::BadIndex(99)));
        // An empty delta is the identity.
        let same = o
            .apply_delta_on(&exec, &HierasDelta::default(), &orders, &mut pool)
            .unwrap();
        assert_same(&same, &o);
    }

    #[test]
    fn delta_touch_stats_count_affected_rings() {
        let (space, ids, orders, config) = two_bin_inputs();
        let exec = Executor::default();
        let all: Vec<u32> = (0..12u32).collect();
        let o = HierasOracle::build_members_on(
            &exec,
            space,
            Arc::clone(&ids),
            orders.clone(),
            &all,
            config,
        )
        .unwrap();
        let none = o.delta_touch_stats(&HierasDelta::default(), &orders);
        assert_eq!((none.touched_rings, none.total_rings), (0, 3));
        assert_eq!(none.fraction(), 0.0);
        // One departure touches the global ring and its "22" stub ring.
        let delta = HierasDelta { departed: &[3], ..HierasDelta::default() };
        let s = o.delta_touch_stats(&delta, &orders);
        assert_eq!((s.touched_rings, s.total_rings), (2, 3));
        // A re-bin from "22" to "00" touches both stub rings, not global.
        let mut after = orders.clone();
        after[3] = LandmarkOrder(vec![0, 0]);
        let delta = HierasDelta { rebinned: &[3], ..HierasDelta::default() };
        let s = o.delta_touch_stats(&delta, &after);
        assert_eq!((s.touched_rings, s.total_rings), (2, 3));
    }

    #[test]
    fn recycled_oracle_feeds_the_next_delta() {
        let (space, ids, orders, config) = two_bin_inputs();
        let exec = Executor::default();
        let all: Vec<u32> = (0..12u32).collect();
        let mut pool = RingArenaPool::new(16);
        let base = HierasOracle::build_members_on(
            &exec,
            space,
            Arc::clone(&ids),
            orders.clone(),
            &all,
            config,
        )
        .unwrap();
        let delta = HierasDelta { departed: &[3], ..HierasDelta::default() };
        let next = base.apply_delta_on(&exec, &delta, &orders, &mut pool).unwrap();
        // Retire the base epoch: only rings it solely owns are salvaged.
        base.recycle_into(&mut pool);
        assert!(pool.stats().returned > 0, "retired arenas were deposited");
        let delta = HierasDelta { departed: &[5], ..HierasDelta::default() };
        let reused_before = pool.stats().reused;
        let _ = next.apply_delta_on(&exec, &delta, &orders, &mut pool).unwrap();
        assert!(pool.stats().reused > reused_before, "delta build drew from the pool");
    }

    /// Seeded-loop replacement for the old property test: HIERAS always
    /// resolves to the Chord owner, for arbitrary memberships, orders
    /// and depths.
    #[test]
    fn hieras_owner_equals_chord_owner() {
        let mut rng = hieras_rt::Rng::seed_from_u64(0x0c1e);
        for case in 0..128 {
            let seed = rng.random_range(0u64..300);
            let n = rng.random_range(2usize..40);
            let depth = rng.random_range(1usize..4);
            let key = Id(rng.next_u64());
            let space = IdSpace::full();
            let mut raw: Vec<u64> = (0..n as u64)
                .map(|i| seed.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i << 17))
                .collect();
            raw.sort_unstable();
            raw.dedup();
            let ids: Arc<[Id]> = raw.iter().map(|&v| Id(v)).collect::<Vec<_>>().into();
            let landmarks = 3usize;
            let rtts: Vec<Vec<u16>> = (0..raw.len() as u64)
                .map(|i| {
                    (0..landmarks as u64)
                        .map(|l| (((seed ^ i).wrapping_mul(31).wrapping_add(l * 97)) % 250) as u16)
                        .collect()
                })
                .collect();
            let config = HierasConfig { depth, landmarks, binning: Binning::paper() };
            let o = HierasOracle::from_rtts(space, Arc::clone(&ids), &rtts, config).unwrap();
            let chord = hieras_chord::ChordOracle::build(space, ids).unwrap();
            let want = chord.owner_of(key);
            for src in 0..raw.len() as u32 {
                let t = o.route(src, key);
                assert_eq!(t.destination(), want, "case {case} src {src}");
                // Scalability bound: O(depth * log N) with generous slack.
                assert!(t.hop_count() <= depth * (raw.len() + 64), "case {case}");
            }
        }
    }
}
