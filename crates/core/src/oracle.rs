//! Oracle-mode HIERAS: multi-layer finger tables and m-loop routing.
//!
//! Layer numbering follows the paper: **layer 1** is the single global
//! ring containing every peer; **layer m** (= the configured depth) is
//! the lowest layer, whose rings are named by the full landmark order.
//! Every layer reuses [`hieras_chord::RingView`] — the "underlying DHT
//! routing algorithm with the corresponding finger table" of §3.2 —
//! restricted to the ring's membership.

use crate::{ConfigError, HierasConfig, LandmarkOrder, RingTable, RouteTrace};
use crate::trace::{HopRecord, RouteCost};
use hieras_chord::{PathBuf, RingBuildError, RingView};
use hieras_id::{Id, IdSpace, Key};
use hieras_rt::Executor;
use std::collections::HashMap;
use std::sync::Arc;

/// Errors building a [`HierasOracle`].
#[derive(Debug, Clone, PartialEq)]
pub enum HierasBuildError {
    /// Invalid configuration.
    Config(ConfigError),
    /// Ring construction failed (duplicate ids, empty membership…).
    Ring(RingBuildError),
    /// `orders.len() != ids.len()`.
    OrderCount {
        /// Number of node ids supplied.
        expected: usize,
        /// Number of landmark orders supplied.
        got: usize,
    },
    /// A landmark order has fewer digits than the configured landmark
    /// count — the lowest layer could not be named.
    OrderTooShort {
        /// Offending node index.
        node: u32,
        /// Digits present.
        got: usize,
        /// Digits required (`config.landmarks`).
        need: usize,
    },
}

impl core::fmt::Display for HierasBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HierasBuildError::Config(e) => write!(f, "bad config: {e}"),
            HierasBuildError::Ring(e) => write!(f, "ring construction failed: {e}"),
            HierasBuildError::OrderCount { expected, got } => {
                write!(f, "expected {expected} landmark orders, got {got}")
            }
            HierasBuildError::OrderTooShort { node, got, need } => {
                write!(f, "node {node} has {got}-digit order, need {need}")
            }
        }
    }
}

impl std::error::Error for HierasBuildError {}

impl From<ConfigError> for HierasBuildError {
    fn from(e: ConfigError) -> Self {
        HierasBuildError::Config(e)
    }
}

impl From<RingBuildError> for HierasBuildError {
    fn from(e: RingBuildError) -> Self {
        HierasBuildError::Ring(e)
    }
}

/// Aggregate packed-routing-state footprint over the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingArenaStats {
    /// Total rings across all layers (layer 1 contributes one).
    pub rings: usize,
    /// Total member slots across all ring arenas (each node appears
    /// once per layer, so this is ≈ nodes × depth).
    pub member_slots: usize,
    /// Total bytes of packed routing state (member indices, id arenas,
    /// seek indices) across all rings.
    pub bytes: usize,
}

/// One hierarchy layer: the disjoint rings partitioning all peers.
#[derive(Debug, Clone)]
pub struct Layer {
    /// 1-based layer number (1 = global).
    pub layer_no: usize,
    /// The rings of this layer.
    rings: Vec<RingView>,
    /// Ring names (order-string prefixes), parallel to `rings`.
    names: Vec<LandmarkOrder>,
    /// Ring index (into `rings`) of each global node.
    ring_of_node: Box<[u32]>,
}

impl Layer {
    /// Number of rings in this layer.
    #[must_use]
    pub fn ring_count(&self) -> usize {
        self.rings.len()
    }

    /// The ring containing global node `node`.
    ///
    /// # Panics
    /// Panics if `node` is not part of this hierarchy (subset builds
    /// via [`HierasOracle::build_members_on`] exclude dead nodes).
    #[must_use]
    pub fn ring_of(&self, node: u32) -> &RingView {
        &self.rings[self.ring_of_node[node as usize] as usize]
    }

    /// The name of the ring containing `node`.
    #[must_use]
    pub fn ring_name_of(&self, node: u32) -> &LandmarkOrder {
        &self.names[self.ring_of_node[node as usize] as usize]
    }

    /// Iterates `(name, ring)` pairs.
    pub fn rings(&self) -> impl Iterator<Item = (&LandmarkOrder, &RingView)> {
        self.names.iter().zip(self.rings.iter())
    }
}

/// One row of a node's (multi-layer) finger table, as in the paper's
/// Table 2: the finger start, the interval it covers, and the
/// successor chosen in every layer's ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerRow {
    /// `n + 2^i`.
    pub start: Id,
    /// End of the covered interval `[start, end)` = next finger start.
    pub end: Id,
    /// Successor node per layer: `successors[j-1]` is the layer-`j`
    /// finger target (global node index).
    pub successors: Vec<u32>,
}

/// HIERAS over a known membership: every peer's ring memberships and
/// per-layer finger tables, plus the ring tables, built centrally.
#[derive(Debug, Clone)]
pub struct HierasOracle {
    space: IdSpace,
    ids: Arc<[Id]>,
    config: HierasConfig,
    orders: Vec<LandmarkOrder>,
    /// `layers[j-1]` is layer `j`; `layers[0]` is the global ring.
    layers: Vec<Layer>,
    /// Ring tables of every non-global ring, keyed by ring name.
    ring_tables: HashMap<String, RingTable>,
}

impl HierasOracle {
    /// Builds the hierarchy from per-node landmark orders.
    ///
    /// `orders[i]` must carry at least `config.landmarks` digits (extra
    /// digits are ignored); produce them with
    /// [`crate::Binning::order`] from measured landmark RTTs.
    ///
    /// # Errors
    /// See [`HierasBuildError`].
    pub fn build(
        space: IdSpace,
        ids: Arc<[Id]>,
        orders: Vec<LandmarkOrder>,
        config: HierasConfig,
    ) -> Result<Self, HierasBuildError> {
        Self::build_on(&Executor::default(), space, ids, orders, config)
    }

    /// [`HierasOracle::build`] on a caller-supplied executor.
    ///
    /// The per-layer ring grouping runs in parallel across layers and
    /// every ring's finger table builds in parallel across rings (the
    /// global ring additionally fills its table in parallel inside
    /// [`RingView::build_on`]). Each unit of work is a pure function
    /// of the inputs and results merge in deterministic chunk order,
    /// so the hierarchy is bit-identical at any thread count.
    ///
    /// # Errors
    /// See [`HierasBuildError`].
    pub fn build_on(
        exec: &Executor,
        space: IdSpace,
        ids: Arc<[Id]>,
        orders: Vec<LandmarkOrder>,
        config: HierasConfig,
    ) -> Result<Self, HierasBuildError> {
        let members: Vec<u32> = (0..ids.len() as u32).collect();
        Self::build_members_on(exec, space, ids, orders, &members, config)
    }

    /// [`HierasOracle::build_on`] restricted to a *subset* of the node
    /// table: only the global indices in `members` join the hierarchy
    /// (one global ring of the members, lower rings grouping members by
    /// landmark-order prefix). The id table and landmark orders stay
    /// global-sized, so routes, [`HierasOracle::eval`] link callbacks
    /// and [`HierasOracle::owner_of`] all speak global node indices —
    /// a churned snapshot drops straight into code written for the
    /// full-membership oracle.
    ///
    /// Only members' orders need `config.landmarks` digits; dead nodes'
    /// orders are never read. Routing *from* a non-member is a protocol
    /// violation and panics (the node has no ring), which is the guard
    /// the serving engine relies on to catch stale-source bugs.
    ///
    /// # Errors
    /// See [`HierasBuildError`]; an empty or out-of-range `members`
    /// surfaces as [`HierasBuildError::Ring`].
    pub fn build_members_on(
        exec: &Executor,
        space: IdSpace,
        ids: Arc<[Id]>,
        orders: Vec<LandmarkOrder>,
        members: &[u32],
        config: HierasConfig,
    ) -> Result<Self, HierasBuildError> {
        config.validate()?;
        if orders.len() != ids.len() {
            return Err(HierasBuildError::OrderCount { expected: ids.len(), got: orders.len() });
        }
        if members.is_empty() {
            return Err(HierasBuildError::Ring(RingBuildError::Empty));
        }
        for &m in members {
            let Some(o) = orders.get(m as usize) else {
                return Err(HierasBuildError::Ring(RingBuildError::BadIndex(m)));
            };
            if o.len() < config.landmarks {
                return Err(HierasBuildError::OrderTooShort {
                    node: m,
                    got: o.len(),
                    need: config.landmarks,
                });
            }
        }
        let n = ids.len();
        // Phase 1 — group members into rings, one independent job per
        // layer (chunk = 1 layer; merged in ascending layer order).
        struct LayerProto {
            layer_no: usize,
            names: Vec<LandmarkOrder>,
            members: Vec<Vec<u32>>,
            ring_of_node: Box<[u32]>,
        }
        let group_layer = |layer_no: usize| -> LayerProto {
            let plen = config.prefix_len(layer_no);
            let mut groups: HashMap<LandmarkOrder, Vec<u32>> = HashMap::new();
            for &i in members {
                groups.entry(orders[i as usize].prefix(plen)).or_default().push(i);
            }
            let mut names: Vec<LandmarkOrder> = groups.keys().cloned().collect();
            names.sort(); // deterministic ring numbering
            // Non-members keep u32::MAX, so `ring_of` on a dead node
            // trips an index panic instead of silently routing.
            let mut ring_of_node = vec![u32::MAX; n].into_boxed_slice();
            let members: Vec<Vec<u32>> = names
                .iter()
                .enumerate()
                .map(|(ri, name)| {
                    let members = groups.remove(name).expect("name came from groups");
                    for &m in &members {
                        ring_of_node[m as usize] = ri as u32;
                    }
                    members
                })
                .collect();
            LayerProto { layer_no, names, members, ring_of_node }
        };
        let protos: Vec<LayerProto> = exec.par_fold(
            config.depth,
            1,
            Vec::new,
            |acc, d| acc.push(group_layer(d + 1)),
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        // Phase 2 — build every ring of every layer. Rings are
        // independent; one job per ring, merged in (layer, ring) order.
        let jobs: Vec<(usize, usize)> = protos
            .iter()
            .enumerate()
            .flat_map(|(li, p)| (0..p.names.len()).map(move |ri| (li, ri)))
            .collect();
        let built: Vec<Result<RingView, RingBuildError>> = exec.par_fold(
            jobs.len(),
            1,
            Vec::new,
            |acc, j| {
                let (li, ri) = jobs[j];
                // Inner parallelism only pays off for the big rings
                // (the global ring); small rings build serially inside
                // their own job.
                acc.push(RingView::build_on(exec, space, Arc::clone(&ids), &protos[li].members[ri]));
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        let mut rings_by_job = built.into_iter();
        let mut layers = Vec::with_capacity(config.depth);
        for proto in protos {
            let mut rings = Vec::with_capacity(proto.names.len());
            for _ in 0..proto.names.len() {
                rings.push(rings_by_job.next().expect("one result per job")?);
            }
            layers.push(Layer {
                layer_no: proto.layer_no,
                rings,
                names: proto.names,
                ring_of_node: proto.ring_of_node,
            });
        }
        // Ring tables for every non-global ring (§3.1): record all
        // members; the table itself keeps only the four extreme ids.
        let mut ring_tables = HashMap::new();
        for layer in layers.iter().skip(1) {
            for (name, ring) in layer.rings() {
                let table = ring_tables
                    .entry(name.name())
                    .or_insert_with(|| RingTable::new(name));
                for &m in ring.members() {
                    table.observe(ids[m as usize]);
                }
            }
        }
        Ok(HierasOracle { space, ids, config, orders, layers, ring_tables })
    }

    /// Convenience: builds from raw landmark RTT vectors using the
    /// configured binning.
    ///
    /// # Errors
    /// See [`HierasBuildError`].
    pub fn from_rtts(
        space: IdSpace,
        ids: Arc<[Id]>,
        rtts: &[Vec<u16>],
        config: HierasConfig,
    ) -> Result<Self, HierasBuildError> {
        let orders = rtts.iter().map(|r| config.binning.order(r)).collect();
        Self::build(space, ids, orders, config)
    }

    /// The identifier space.
    #[must_use]
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// The configuration this hierarchy was built with.
    #[must_use]
    pub fn config(&self) -> &HierasConfig {
        &self.config
    }

    /// Number of peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Never empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Id of node `node`.
    #[must_use]
    pub fn id_of(&self, node: u32) -> Id {
        self.ids[node as usize]
    }

    /// Landmark order of node `node`.
    #[must_use]
    pub fn order_of(&self, node: u32) -> &LandmarkOrder {
        &self.orders[node as usize]
    }

    /// The layers, top (global, layer 1) first.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Aggregate size of the packed routing state across every ring of
    /// every layer — the source feeding the `ring_arena.*` metrics. The
    /// whole routing fabric is these arenas plus the shared id table.
    #[must_use]
    pub fn arena_stats(&self) -> RingArenaStats {
        let mut stats = RingArenaStats { rings: 0, member_slots: 0, bytes: 0 };
        for layer in &self.layers {
            for (_, ring) in layer.rings() {
                stats.rings += 1;
                stats.member_slots += ring.len();
                stats.bytes += ring.arena_bytes();
            }
        }
        stats
    }

    /// The global ring (layer 1).
    #[must_use]
    pub fn global_ring(&self) -> &RingView {
        &self.layers[0].rings[0]
    }

    /// Global node index owning `key` (ground truth = Chord owner).
    #[must_use]
    pub fn owner_of(&self, key: Key) -> u32 {
        let g = self.global_ring();
        g.node_at(g.successor_of_key(key))
    }

    /// The ring table of the ring named `name`, if that ring exists.
    #[must_use]
    pub fn ring_table(&self, name: &str) -> Option<&RingTable> {
        self.ring_tables.get(name)
    }

    /// All ring tables (for diagnostics and the Table 3 figure).
    #[must_use]
    pub fn ring_tables(&self) -> &HashMap<String, RingTable> {
        &self.ring_tables
    }

    /// The node that *stores* a ring table: the one whose id is
    /// numerically closest to the ring id — i.e. the Chord owner of
    /// `ring_id` on the global ring (§3.1).
    #[must_use]
    pub fn ring_table_holder(&self, ring_id: Id) -> u32 {
        self.owner_of(ring_id)
    }

    /// Routes `key` from `src` with the paper's m-loop procedure
    /// (§3.2): finish in the lowest-layer ring of the current node,
    /// check whether the current node is already the destination, and
    /// otherwise continue one layer up with that layer's finger table.
    ///
    /// Lower layers route to the closest *preceding* ring member of the
    /// key and hand off there; only the global ring takes the delivery
    /// hop to the owner. Handing off at the ring-local owner instead
    /// would overshoot the key in id space and force the next layer to
    /// route nearly the whole circle.
    ///
    /// # Panics
    /// Panics if `src` is out of range.
    #[must_use]
    pub fn route(&self, src: u32, key: Key) -> RouteTrace {
        let mut trace = RouteTrace { origin: src, hops: Vec::with_capacity(8) };
        let mut scratch = PathBuf::new();
        self.route_with(src, key, &mut scratch, |from, to, layer| {
            trace.hops.push(HopRecord { from, to, layer });
        });
        trace
    }

    /// Visitor core of the m-loop procedure: walks the exact hop
    /// sequence [`HierasOracle::route`] records, calling
    /// `on_hop(from, to, layer)` per hop with global node indices, and
    /// returns the node the key resolved to. Per-layer ring paths are
    /// written into `scratch`, so a caller that reuses one scratch
    /// across lookups routes without heap allocation in steady state.
    ///
    /// # Panics
    /// Panics if `src` is out of range.
    pub fn route_with<F>(&self, src: u32, key: Key, scratch: &mut PathBuf, mut on_hop: F) -> u32
    where
        F: FnMut(u32, u32, u8),
    {
        assert!((src as usize) < self.ids.len(), "src out of range");
        let owner = self.owner_of(key);
        let mut cur = src;
        // Lowest layer first: layers[depth-1] … layers[0].
        for layer in self.layers.iter().rev() {
            // The destination check that ends each loop early (§3.2).
            if cur == owner {
                return cur;
            }
            let ring = layer.ring_of(cur);
            let pos = ring.position_of(cur).expect("node is member of its own ring");
            if layer.layer_no == 1 {
                ring.route_into(pos, key, scratch);
            } else {
                ring.route_to_predecessor_into(pos, key, scratch);
            }
            let path = scratch.as_slice();
            for w in path.windows(2) {
                on_hop(ring.node_at(w[0]), ring.node_at(w[1]), layer.layer_no as u8);
            }
            cur = ring.node_at(*path.last().expect("path never empty"));
        }
        debug_assert_eq!(cur, owner, "global loop must end at the key's owner");
        cur
    }

    /// Routes `key` from `src` and condenses the trace into a
    /// [`RouteCost`] on the fly — the replay hot path. `link` supplies
    /// per-hop latency (typically `LatencyOracle::latency` over
    /// attachment routers). Produces exactly the quantities
    /// [`HierasOracle::route`] + [`RouteTrace::latency_split`] would,
    /// without materializing the trace.
    ///
    /// # Panics
    /// Panics if `src` is out of range.
    pub fn eval(
        &self,
        src: u32,
        key: Key,
        scratch: &mut PathBuf,
        mut link: impl FnMut(u32, u32) -> u16,
    ) -> RouteCost {
        let mut cost = RouteCost::default();
        let dest = self.route_with(src, key, scratch, |from, to, layer| {
            let l = u64::from(link(from, to));
            cost.hops += 1;
            cost.latency_ms += l;
            if layer > 1 {
                cost.lower_hops += 1;
                cost.lower_latency_ms += l;
            }
        });
        cost.destination = dest;
        cost
    }

    /// The multi-layer finger table of `node`, one [`FingerRow`] per
    /// finger index — the paper's Table 2. Rows whose interval is
    /// empty (tiny demo spaces) are still emitted, matching the paper's
    /// fixed `bits` rows.
    #[must_use]
    pub fn finger_rows(&self, node: u32) -> Vec<FingerRow> {
        let me = self.id_of(node);
        let bits = self.space.bits();
        let mut rows = Vec::with_capacity(bits as usize);
        for i in 0..bits {
            let start = self.space.finger_start(me, i);
            let end = if i + 1 < bits {
                self.space.finger_start(me, i + 1)
            } else {
                me
            };
            let successors = self
                .layers
                .iter()
                .map(|layer| {
                    let ring = layer.ring_of(node);
                    ring.node_at(ring.successor_of_key(start))
                })
                .collect();
            rows.push(FingerRow { start, end, successors });
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Binning;

    /// Hand-built 2-layer system: 12 nodes, 2 landmarks, two bins.
    fn two_bin_system() -> (HierasOracle, Arc<[Id]>) {
        let space = IdSpace::full();
        let ids: Arc<[Id]> = (0..12u64)
            .map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect::<Vec<_>>()
            .into();
        // Even nodes near both landmarks ("00"), odd nodes far ("22").
        let rtts: Vec<Vec<u16>> = (0..12)
            .map(|i| if i % 2 == 0 { vec![5, 10] } else { vec![150, 200] })
            .collect();
        let config = HierasConfig { depth: 2, landmarks: 2, binning: Binning::paper() };
        let o = HierasOracle::from_rtts(space, Arc::clone(&ids), &rtts, config).unwrap();
        (o, ids)
    }

    #[test]
    fn builds_expected_ring_structure() {
        let (o, _) = two_bin_system();
        assert_eq!(o.layers().len(), 2);
        assert_eq!(o.layers()[0].ring_count(), 1);
        assert_eq!(o.layers()[1].ring_count(), 2);
        assert_eq!(o.global_ring().len(), 12);
        // Each lower ring holds the 6 even or 6 odd nodes.
        for (_, ring) in o.layers()[1].rings() {
            assert_eq!(ring.len(), 6);
        }
        assert_eq!(o.layers()[1].ring_name_of(0).name(), "00");
        assert_eq!(o.layers()[1].ring_name_of(1).name(), "22");
    }

    #[test]
    fn route_agrees_with_chord_owner_for_all_keys() {
        let (o, _) = two_bin_system();
        for k in 0..200u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95).wrapping_add(k));
            let owner = o.owner_of(key);
            for src in 0..12u32 {
                let t = o.route(src, key);
                assert_eq!(t.destination(), owner, "src {src} key {k}");
                assert_eq!(t.origin, src);
            }
        }
    }

    #[test]
    fn route_uses_lower_layer_first() {
        let (o, _) = two_bin_system();
        let mut saw_lower = false;
        for k in 0..100u64 {
            let key = Id(k.wrapping_mul(0xdead_beef_1234_5678));
            let t = o.route(0, key);
            // Layers must be non-increasing along the trace (lower layer
            // number = higher layer; we go lowest-first so recorded layer
            // numbers run high → low).
            for w in t.hops.windows(2) {
                assert!(w[0].layer >= w[1].layer, "layer order violated: {:?}", t.hops);
            }
            if t.lower_layer_hops() > 0 {
                saw_lower = true;
            }
        }
        assert!(saw_lower, "no request ever used the lower layer");
    }

    #[test]
    fn lower_layer_hops_stay_within_origin_ring() {
        let (o, _) = two_bin_system();
        for k in 0..100u64 {
            let key = Id(k.wrapping_mul(0xabcdef12_3456789b));
            let t = o.route(1, key); // odd node, ring "22"
            for h in t.hops.iter().filter(|h| h.layer == 2) {
                assert_eq!(h.from % 2, 1, "lower hop left the origin ring");
                assert_eq!(h.to % 2, 1, "lower hop left the origin ring");
            }
        }
    }

    #[test]
    fn depth1_is_plain_chord() {
        let space = IdSpace::full();
        let ids: Arc<[Id]> = (1..=20u64).map(|i| Id(i << 40)).collect::<Vec<_>>().into();
        let rtts: Vec<Vec<u16>> = (0..20).map(|_| vec![]).collect();
        let config = HierasConfig { depth: 1, landmarks: 0, binning: Binning::paper() };
        let o = HierasOracle::from_rtts(space, Arc::clone(&ids), &rtts, config).unwrap();
        let chord = hieras_chord::ChordOracle::build(space, ids).unwrap();
        for k in 0..100u64 {
            let key = Id(k.wrapping_mul(0x0123_4567_89ab_cdef));
            let t = o.route(3, key);
            let c = chord.lookup(3, key);
            assert_eq!(t.destination(), c.owner());
            assert_eq!(t.hop_count(), c.hops(), "key {k}");
            assert!(t.hops.iter().all(|h| h.layer == 1));
        }
    }

    #[test]
    fn build_rejects_mismatched_orders() {
        let space = IdSpace::full();
        let ids: Arc<[Id]> = vec![Id(1), Id(2)].into();
        let err = HierasOracle::build(
            space,
            Arc::clone(&ids),
            vec![LandmarkOrder(vec![0, 0])],
            HierasConfig { depth: 2, landmarks: 2, binning: Binning::paper() },
        )
        .unwrap_err();
        assert_eq!(err, HierasBuildError::OrderCount { expected: 2, got: 1 });
        let err = HierasOracle::build(
            space,
            ids,
            vec![LandmarkOrder(vec![0]), LandmarkOrder(vec![0, 1])],
            HierasConfig { depth: 2, landmarks: 2, binning: Binning::paper() },
        )
        .unwrap_err();
        assert_eq!(err, HierasBuildError::OrderTooShort { node: 0, got: 1, need: 2 });
    }

    #[test]
    fn ring_tables_cover_all_lower_rings() {
        let (o, ids) = two_bin_system();
        assert_eq!(o.ring_tables().len(), 2);
        let t = o.ring_table("00").unwrap();
        assert_eq!(t.ring_name, "00");
        assert!(t.len() >= 1 && t.len() <= 4);
        // Every entry point is an even node's id.
        for ep in t.entry_points() {
            assert!(ids.iter().step_by(2).any(|i| i == ep));
        }
        // The holder is the global owner of the ring id.
        let holder = o.ring_table_holder(t.ring_id);
        assert_eq!(holder, o.owner_of(t.ring_id));
    }

    #[test]
    fn finger_rows_have_one_successor_per_layer() {
        let (o, _) = two_bin_system();
        let rows = o.finger_rows(4);
        assert_eq!(rows.len(), 64);
        for r in &rows {
            assert_eq!(r.successors.len(), 2);
            // Layer-2 successor stays in node 4's ring (even nodes).
            assert_eq!(r.successors[1] % 2, 0);
        }
    }

    #[test]
    fn deeper_hierarchies_nest_rings() {
        let space = IdSpace::full();
        let n = 30u64;
        let ids: Arc<[Id]> =
            (0..n).map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))).collect::<Vec<_>>().into();
        // 4 landmarks, varied bins.
        let rtts: Vec<Vec<u16>> = (0..n)
            .map(|i| {
                vec![
                    if i % 2 == 0 { 5 } else { 150 },
                    if i % 3 == 0 { 10 } else { 120 },
                    if i % 5 == 0 { 15 } else { 200 },
                    30,
                ]
            })
            .collect();
        let config = HierasConfig { depth: 3, landmarks: 4, binning: Binning::paper() };
        let o = HierasOracle::from_rtts(space, ids, &rtts, config).unwrap();
        assert_eq!(o.layers().len(), 3);
        // Nesting: all members of a layer-3 ring share their layer-2 ring.
        for node in 0..n as u32 {
            let l3 = o.layers()[2].ring_of(node);
            let my_l2 = o.layers()[1].ring_name_of(node);
            for &m in l3.members() {
                assert_eq!(o.layers()[1].ring_name_of(m), my_l2);
            }
        }
        // Routing still exact.
        for k in 0..60u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95));
            let t = o.route((k % n) as u32, key);
            assert_eq!(t.destination(), o.owner_of(key));
        }
    }

    fn two_bin_inputs() -> (IdSpace, Arc<[Id]>, Vec<LandmarkOrder>, HierasConfig) {
        let space = IdSpace::full();
        let ids: Arc<[Id]> = (0..12u64)
            .map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect::<Vec<_>>()
            .into();
        let binning = Binning::paper();
        let orders: Vec<LandmarkOrder> = (0..12)
            .map(|i| {
                let rtts: Vec<u16> =
                    if i % 2 == 0 { vec![5, 10] } else { vec![150, 200] };
                binning.order(&rtts)
            })
            .collect();
        let config = HierasConfig { depth: 2, landmarks: 2, binning };
        (space, ids, orders, config)
    }

    #[test]
    fn subset_build_matches_subset_chord_owner() {
        let (space, ids, orders, config) = two_bin_inputs();
        // Nodes 3 and 8 are dead; the rest form the hierarchy.
        let members: Vec<u32> = (0..12u32).filter(|&m| m != 3 && m != 8).collect();
        let o = HierasOracle::build_members_on(
            &Executor::default(),
            space,
            Arc::clone(&ids),
            orders,
            &members,
            config,
        )
        .unwrap();
        assert_eq!(o.global_ring().len(), 10);
        assert_eq!(o.len(), 12, "id table stays global-sized");
        // Ground truth: a Chord ring over the same subset.
        let chord = RingView::build(space, ids, &members).unwrap();
        for k in 0..200u64 {
            let key = Id(k.wrapping_mul(0x517c_c1b7_2722_0a95).wrapping_add(k));
            let want = chord.node_at(chord.successor_of_key(key));
            assert_eq!(o.owner_of(key), want, "key {k}");
            for &src in &members {
                assert_eq!(o.route(src, key).destination(), want, "src {src} key {k}");
            }
        }
    }

    #[test]
    fn subset_build_rejects_empty_and_out_of_range_members() {
        let (space, ids, orders, config) = two_bin_inputs();
        let err = HierasOracle::build_members_on(
            &Executor::default(),
            space,
            Arc::clone(&ids),
            orders.clone(),
            &[],
            config.clone(),
        )
        .unwrap_err();
        assert_eq!(err, HierasBuildError::Ring(RingBuildError::Empty));
        let err = HierasOracle::build_members_on(
            &Executor::default(),
            space,
            ids,
            orders,
            &[0, 99],
            config,
        )
        .unwrap_err();
        assert_eq!(err, HierasBuildError::Ring(RingBuildError::BadIndex(99)));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn routing_from_a_dead_node_panics() {
        let (space, ids, orders, config) = two_bin_inputs();
        let members: Vec<u32> = (0..12u32).filter(|&m| m != 3).collect();
        let o = HierasOracle::build_members_on(
            &Executor::default(),
            space,
            ids,
            orders,
            &members,
            config,
        )
        .unwrap();
        let _ = o.route(3, Id(42));
    }

    /// Seeded-loop replacement for the old property test: HIERAS always
    /// resolves to the Chord owner, for arbitrary memberships, orders
    /// and depths.
    #[test]
    fn hieras_owner_equals_chord_owner() {
        let mut rng = hieras_rt::Rng::seed_from_u64(0x0c1e);
        for case in 0..128 {
            let seed = rng.random_range(0u64..300);
            let n = rng.random_range(2usize..40);
            let depth = rng.random_range(1usize..4);
            let key = Id(rng.next_u64());
            let space = IdSpace::full();
            let mut raw: Vec<u64> = (0..n as u64)
                .map(|i| seed.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i << 17))
                .collect();
            raw.sort_unstable();
            raw.dedup();
            let ids: Arc<[Id]> = raw.iter().map(|&v| Id(v)).collect::<Vec<_>>().into();
            let landmarks = 3usize;
            let rtts: Vec<Vec<u16>> = (0..raw.len() as u64)
                .map(|i| {
                    (0..landmarks as u64)
                        .map(|l| (((seed ^ i).wrapping_mul(31).wrapping_add(l * 97)) % 250) as u16)
                        .collect()
                })
                .collect();
            let config = HierasConfig { depth, landmarks, binning: Binning::paper() };
            let o = HierasOracle::from_rtts(space, Arc::clone(&ids), &rtts, config).unwrap();
            let chord = hieras_chord::ChordOracle::build(space, ids).unwrap();
            let want = chord.owner_of(key);
            for src in 0..raw.len() as u32 {
                let t = o.route(src, key);
                assert_eq!(t.destination(), want, "case {case} src {src}");
                // Scalability bound: O(depth * log N) with generous slack.
                assert!(t.hop_count() <= depth * (raw.len() + 64), "case {case}");
            }
        }
    }
}
