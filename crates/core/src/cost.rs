//! The §3.4 cost analysis: how much extra state and maintenance does
//! the hierarchy cost compared to plain Chord?
//!
//! The paper argues the overhead is affordable ("hundreds or thousands
//! of bytes") because lower-layer finger tables are smaller and their
//! entries are topologically close. This module computes those numbers
//! for a built hierarchy; the paper's promised "quantitative analysis
//! of HIERAS overheads" (future work, §6) is realized in the `costs`
//! bench target.

use crate::HierasOracle;
use hieras_rt::{FromJson, Json, JsonError, ToJson};

/// Bytes we charge per routing-table entry: 8-byte node id + 4-byte
/// IPv4 address + 2-byte port, padded to 16 for alignment — the same
/// back-of-envelope the paper's "hundred or thousands of bytes" uses.
pub const BYTES_PER_ENTRY: usize = 16;

/// State-size accounting for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Hierarchy depth (1 = plain Chord).
    pub depth: usize,
    /// Number of peers.
    pub nodes: usize,
    /// Total finger-table entries across all nodes and layers
    /// (`bits` rows per table; the raw table size).
    pub finger_entries: u64,
    /// Total *distinct* finger targets across all nodes and layers —
    /// the number of live remote peers each node actually monitors,
    /// which is what keep-alive traffic scales with.
    pub distinct_finger_entries: u64,
    /// Successor-list entries across all nodes and layers
    /// (`succ_list_len` per ring membership, capped by ring size).
    pub succ_list_entries: u64,
    /// Number of ring tables in the system (stored at their holders).
    pub ring_table_count: usize,
    /// Estimated routing-state bytes per node.
    pub bytes_per_node: f64,
}

impl CostReport {
    /// Computes the report for a built hierarchy with the given
    /// successor-list length per layer (the paper's `r`).
    #[must_use]
    pub fn for_oracle(oracle: &HierasOracle, succ_list_len: usize) -> Self {
        let n = oracle.len() as u64;
        let mut finger_entries = 0u64;
        let mut distinct = 0u64;
        let mut succ_entries = 0u64;
        for layer in oracle.layers() {
            for (_, ring) in layer.rings() {
                let members = ring.len() as u64;
                finger_entries += members * u64::from(oracle.space().bits());
                distinct += (ring.avg_distinct_fingers() * members as f64).round() as u64;
                succ_entries += members * (succ_list_len as u64).min(members.saturating_sub(1)).max(1);
            }
        }
        let ring_table_count = oracle.ring_tables().len();
        let per_node_entries = (distinct + succ_entries) as f64 / n as f64;
        CostReport {
            depth: oracle.config().depth,
            nodes: oracle.len(),
            finger_entries,
            distinct_finger_entries: distinct,
            succ_list_entries: succ_entries,
            ring_table_count,
            bytes_per_node: per_node_entries * BYTES_PER_ENTRY as f64,
        }
    }

    /// Multiplicative state overhead versus a baseline (plain-Chord)
    /// report: `self.bytes_per_node / base.bytes_per_node`.
    #[must_use]
    pub fn overhead_vs(&self, base: &CostReport) -> f64 {
        self.bytes_per_node / base.bytes_per_node
    }
}

impl ToJson for CostReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("depth", self.depth.to_json()),
            ("nodes", self.nodes.to_json()),
            ("finger_entries", self.finger_entries.to_json()),
            ("distinct_finger_entries", self.distinct_finger_entries.to_json()),
            ("succ_list_entries", self.succ_list_entries.to_json()),
            ("ring_table_count", self.ring_table_count.to_json()),
            ("bytes_per_node", self.bytes_per_node.to_json()),
        ])
    }
}

impl FromJson for CostReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CostReport {
            depth: v.field("depth")?,
            nodes: v.field("nodes")?,
            finger_entries: v.field("finger_entries")?,
            distinct_finger_entries: v.field("distinct_finger_entries")?,
            succ_list_entries: v.field("succ_list_entries")?,
            ring_table_count: v.field("ring_table_count")?,
            bytes_per_node: v.field("bytes_per_node")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Binning, HierasConfig};
    use hieras_id::{Id, IdSpace};
    use std::sync::Arc;

    fn system(depth: usize) -> HierasOracle {
        let ids: Arc<[Id]> = (0..64u64)
            .map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect::<Vec<_>>()
            .into();
        let rtts: Vec<Vec<u16>> = (0..64)
            .map(|i| {
                vec![
                    if i % 2 == 0 { 5 } else { 150 },
                    if i % 4 < 2 { 10 } else { 130 },
                ]
            })
            .collect();
        let landmarks = if depth == 1 { 0 } else { 2 };
        let config = HierasConfig { depth, landmarks, binning: Binning::paper() };
        HierasOracle::from_rtts(IdSpace::full(), ids, &rtts, config).unwrap()
    }

    #[test]
    fn deeper_hierarchy_costs_more_state() {
        let base = CostReport::for_oracle(&system(1), 8);
        let two = CostReport::for_oracle(&system(2), 8);
        assert!(two.finger_entries > base.finger_entries);
        assert!(two.bytes_per_node > base.bytes_per_node);
        assert!(two.overhead_vs(&base) > 1.0);
        // …but well below 2× raw: lower-ring tables have fewer distinct
        // entries than the global table (§3.4's affordability claim).
        assert!(two.overhead_vs(&base) < 2.5, "overhead {}", two.overhead_vs(&base));
    }

    #[test]
    fn report_scales_with_nodes_and_depth() {
        let r = CostReport::for_oracle(&system(2), 8);
        assert_eq!(r.depth, 2);
        assert_eq!(r.nodes, 64);
        // 64 nodes × 64 bits × 2 layers of raw rows.
        assert_eq!(r.finger_entries, 64 * 64 * 2);
        assert_eq!(r.ring_table_count, 4); // 2 landmarks × {0,2} digits → ≤ 9, here 4 bins
        assert!(r.bytes_per_node > 0.0);
    }

    #[test]
    fn chord_baseline_has_no_ring_tables() {
        let r = CostReport::for_oracle(&system(1), 8);
        assert_eq!(r.ring_table_count, 0);
        assert_eq!(r.finger_entries, 64 * 64);
    }
}
