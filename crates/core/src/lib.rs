//! HIERAS — a DHT-based hierarchical P2P routing algorithm (the
//! paper's primary contribution).
//!
//! HIERAS keeps the underlying DHT (Chord here, as in the paper)
//! untouched and adds a *hierarchy of P2P rings*: besides the global
//! ring containing every peer, topologically adjacent peers — grouped
//! by the Ratnasamy/Shenker distributed binning scheme against a small
//! landmark set — form lower-layer rings. Every peer belongs to one
//! ring per layer; each membership carries its own Chord finger table
//! restricted to that ring. A lookup routes to completion inside the
//! originator's lowest-layer ring first, then climbs layer by layer,
//! so most hops traverse short, cheap links (§3.2).
//!
//! Module map (paper section in parentheses):
//!
//! * [`Binning`] — distributed binning: landmark RTT → level digits →
//!   landmark order (§2.2, Table 1).
//! * [`HierasConfig`] — hierarchy depth, landmark count, level bounds
//!   (§2.4), plus the prefix-refinement rule for depths > 2
//!   (DESIGN.md §3.4 — the paper leaves deep hierarchies unspecified).
//! * [`RingTable`] — the four-slot per-ring bootstrap table stored at
//!   the node whose id is closest to `SHA-1(ringname)` (§3.1, Table 3).
//! * [`HierasOracle`] — multi-layer finger tables over a known
//!   membership and the m-loop routing procedure (§3.1–3.2); yields a
//!   per-hop [`RouteTrace`] the simulator turns into the paper's
//!   hop/latency metrics.
//! * [`CostReport`] — the §3.4 state/maintenance cost accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binning;
mod config;
mod cost;
mod oracle;
mod ring_table;
mod trace;

pub use binning::{Binning, LandmarkOrder};
pub use config::{ConfigError, HierasConfig};
pub use cost::CostReport;
pub use oracle::{DeltaStats, FingerRow, HierasBuildError, HierasDelta, HierasOracle, Layer, RingArenaStats};
pub use hieras_chord::{ArenaPoolStats, PathBuf, RingArenaPool};
pub use ring_table::RingTable;
pub use trace::{HopRecord, RouteCost, RouteTrace};
