//! Per-hop routing traces — the raw material for every figure.

use hieras_rt::{FromJson, Json, JsonError, ToJson};

/// One routing hop: the message moved from global node `from` to
/// global node `to`, using the finger table of layer `layer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// Global index of the forwarding node.
    pub from: u32,
    /// Global index of the receiving node.
    pub to: u32,
    /// 1-based layer whose finger table made this hop (1 = global
    /// ring; larger = lower layers). Plain Chord traces use layer 1
    /// throughout.
    pub layer: u8,
}

/// The full trace of one routing procedure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteTrace {
    /// Originating node.
    pub origin: u32,
    /// Hops in order. Empty if the originator owned the key.
    pub hops: Vec<HopRecord>,
}

impl RouteTrace {
    /// Total number of hops.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The node the key resolved to.
    #[must_use]
    pub fn destination(&self) -> u32 {
        self.hops.last().map_or(self.origin, |h| h.to)
    }

    /// Hops taken in layers *below* the global ring (layer > 1) — the
    /// quantity Figure 4's third curve and §4.3's "71.38%" statistic
    /// measure.
    #[must_use]
    pub fn lower_layer_hops(&self) -> usize {
        self.hops.iter().filter(|h| h.layer > 1).count()
    }

    /// Hops taken in the global ring (layer 1).
    #[must_use]
    pub fn top_layer_hops(&self) -> usize {
        self.hops.iter().filter(|h| h.layer == 1).count()
    }

    /// Sums hop latencies with a caller-supplied link-latency function
    /// (typically `LatencyOracle::latency` over attachment routers),
    /// returning `(total, lower_layer_total)` in milliseconds.
    #[must_use]
    pub fn latency_split(&self, mut link: impl FnMut(u32, u32) -> u16) -> (u64, u64) {
        let mut total = 0u64;
        let mut lower = 0u64;
        for h in &self.hops {
            let l = u64::from(link(h.from, h.to));
            total += l;
            if h.layer > 1 {
                lower += l;
            }
        }
        (total, lower)
    }
}

/// Condensed result of one routing evaluation — what the replay hot
/// loop needs from a lookup, computed without materializing a
/// [`RouteTrace`] (no per-lookup heap allocation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCost {
    /// Total hops.
    pub hops: u32,
    /// Hops taken in layers below the global ring.
    pub lower_hops: u32,
    /// Sum of link latencies over all hops, ms.
    pub latency_ms: u64,
    /// Portion of the latency spent in lower-layer hops, ms.
    pub lower_latency_ms: u64,
    /// The node the key resolved to.
    pub destination: u32,
}

impl ToJson for HopRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("from", self.from.to_json()),
            ("to", self.to.to_json()),
            ("layer", self.layer.to_json()),
        ])
    }
}

impl FromJson for HopRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(HopRecord { from: v.field("from")?, to: v.field("to")?, layer: v.field("layer")? })
    }
}

impl ToJson for RouteTrace {
    fn to_json(&self) -> Json {
        Json::obj([("origin", self.origin.to_json()), ("hops", self.hops.to_json())])
    }
}

impl FromJson for RouteTrace {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RouteTrace { origin: v.field("origin")?, hops: v.field("hops")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> RouteTrace {
        RouteTrace {
            origin: 0,
            hops: vec![
                HopRecord { from: 0, to: 3, layer: 2 },
                HopRecord { from: 3, to: 7, layer: 2 },
                HopRecord { from: 7, to: 9, layer: 1 },
            ],
        }
    }

    #[test]
    fn counts_and_destination() {
        let t = trace();
        assert_eq!(t.hop_count(), 3);
        assert_eq!(t.lower_layer_hops(), 2);
        assert_eq!(t.top_layer_hops(), 1);
        assert_eq!(t.destination(), 9);
    }

    #[test]
    fn empty_trace_resolves_to_origin() {
        let t = RouteTrace { origin: 5, hops: vec![] };
        assert_eq!(t.destination(), 5);
        assert_eq!(t.hop_count(), 0);
        assert_eq!(t.latency_split(|_, _| 10), (0, 0));
    }

    #[test]
    fn latency_split_sums_per_layer() {
        let t = trace();
        // Every hop costs 10ms.
        assert_eq!(t.latency_split(|_, _| 10), (30, 20));
        // Distance-dependent link function.
        let (total, lower) =
            t.latency_split(|a, b| (u16::try_from(a + b).unwrap()) * 10);
        assert_eq!(total, 30 + 100 + 160);
        assert_eq!(lower, 130);
    }
}
