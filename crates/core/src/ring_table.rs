//! The per-ring bootstrap table (§3.1, Table 3).
//!
//! For every P2P ring, a *ring table* records four member nodes — the
//! two smallest and two largest ids in the ring. It is stored at the
//! node whose id is numerically closest to `SHA-1(ringname)` and is
//! how a joining node finds *some* member of a ring it must join: it
//! routes a ring-table request to the table holder over the global
//! ring (an ordinary Chord lookup), then asks any recorded member to
//! build its ring-restricted finger table (§3.3).

use crate::LandmarkOrder;
use hieras_id::Id;
use hieras_rt::{FromJson, Json, JsonError, ToJson};

/// The paper's Table 3 structure: ringid, ringname and four member
/// slots (largest, second-largest, smallest, second-smallest id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingTable {
    /// `SHA-1(ringname)` — determines which node stores this table.
    pub ring_id: Id,
    /// The landmark-order digit string naming the ring, e.g. "012".
    pub ring_name: String,
    /// Member ids, ascending, at most four: `[smallest,
    /// second-smallest, second-largest, largest]` (fewer while the ring
    /// is small; always deduplicated).
    members: Vec<Id>,
}

impl RingTable {
    /// An empty table for the ring named by `order`.
    #[must_use]
    pub fn new(order: &LandmarkOrder) -> Self {
        RingTable { ring_id: order.ring_id(), ring_name: order.name(), members: Vec::new() }
    }

    /// The node with the smallest id, if any.
    #[must_use]
    pub fn smallest(&self) -> Option<Id> {
        self.members.first().copied()
    }

    /// The node with the second smallest id, if the ring has ≥ 2 members.
    #[must_use]
    pub fn second_smallest(&self) -> Option<Id> {
        (self.members.len() >= 2).then(|| self.members[1])
    }

    /// The node with the largest id, if any.
    #[must_use]
    pub fn largest(&self) -> Option<Id> {
        self.members.last().copied()
    }

    /// The node with the second largest id, if the ring has ≥ 2 members.
    #[must_use]
    pub fn second_largest(&self) -> Option<Id> {
        (self.members.len() >= 2).then(|| self.members[self.members.len() - 2])
    }

    /// All recorded members (1–4 entries), ascending by id. Any of them
    /// can serve as the joining node's entry point into the ring.
    #[must_use]
    pub fn entry_points(&self) -> &[Id] {
        &self.members
    }

    /// True if a joining node with id `candidate` should send a
    /// ring-table modification message (§3.3: "larger than the second
    /// largest nodeid or smaller than the second smallest nodeid").
    #[must_use]
    pub fn should_update(&self, candidate: Id) -> bool {
        if self.members.contains(&candidate) {
            return false;
        }
        if self.members.len() < 4 {
            return true;
        }
        candidate < self.members[1] || candidate > self.members[2]
    }

    /// Records a (joining) node, keeping only the two smallest and two
    /// largest ids. Idempotent.
    pub fn observe(&mut self, candidate: Id) {
        if self.members.contains(&candidate) {
            return;
        }
        self.members.push(candidate);
        self.members.sort_unstable();
        if self.members.len() > 4 {
            // Drop from the middle: keep 2 smallest + 2 largest.
            let drop_at = self.members.len() / 2;
            self.members.remove(drop_at);
        }
    }

    /// Removes a departed/failed node. Returns true if it was recorded
    /// (the holder then re-populates the slot by routing a new lookup,
    /// §3.1's failure note — in oracle mode the caller re-observes a
    /// surviving member).
    pub fn remove(&mut self, node: Id) -> bool {
        if let Some(p) = self.members.iter().position(|&m| m == node) {
            self.members.remove(p);
            true
        } else {
            false
        }
    }

    /// Failure repair, step 1 (§3.1's failure note): drops every
    /// recorded member `alive` rejects, returning the dead ids so the
    /// holder can count repair traffic and notify interested parties.
    pub fn purge(&mut self, alive: impl Fn(Id) -> bool) -> Vec<Id> {
        let mut dead = Vec::new();
        self.members.retain(|&m| {
            let keep = alive(m);
            if !keep {
                dead.push(m);
            }
            keep
        });
        dead
    }

    /// Failure repair, step 2: re-populates the freed slots from
    /// surviving ring members (the holder learns them by routing a new
    /// lookup into the ring). Just a bulk [`RingTable::observe`].
    pub fn repair_from(&mut self, survivors: impl IntoIterator<Item = Id>) {
        for s in survivors {
            self.observe(s);
        }
    }

    /// True if the table has free slots a repair could fill (fewer than
    /// the four slots of the paper's Table 3).
    #[must_use]
    pub fn needs_repair(&self) -> bool {
        self.members.len() < 4
    }

    /// Number of recorded members (0–4).
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if no member is recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl ToJson for RingTable {
    fn to_json(&self) -> Json {
        Json::obj([
            ("ring_id", self.ring_id.to_json()),
            ("ring_name", self.ring_name.to_json()),
            ("members", self.members.to_json()),
        ])
    }
}

impl FromJson for RingTable {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let members: Vec<Id> = v.field("members")?;
        if members.len() > 4 || members.windows(2).any(|w| w[0] >= w[1]) {
            return Err(JsonError("ring table members must be <= 4 ascending ids".into()));
        }
        Ok(RingTable { ring_id: v.field("ring_id")?, ring_name: v.field("ring_name")?, members })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order() -> LandmarkOrder {
        LandmarkOrder(vec![0, 1, 2])
    }

    #[test]
    fn new_table_is_empty_and_named() {
        let t = RingTable::new(&order());
        assert!(t.is_empty());
        assert_eq!(t.ring_name, "012");
        assert_eq!(t.ring_id, Id::hash_of(b"012"));
        assert_eq!(t.smallest(), None);
        assert_eq!(t.largest(), None);
    }

    #[test]
    fn observe_keeps_two_smallest_two_largest() {
        let mut t = RingTable::new(&order());
        for id in [50u64, 10, 90, 30, 70, 5, 95] {
            t.observe(Id(id));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.smallest(), Some(Id(5)));
        assert_eq!(t.second_smallest(), Some(Id(10)));
        assert_eq!(t.second_largest(), Some(Id(90)));
        assert_eq!(t.largest(), Some(Id(95)));
    }

    #[test]
    fn observe_is_idempotent() {
        let mut t = RingTable::new(&order());
        t.observe(Id(1));
        t.observe(Id(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn should_update_matches_paper_rule() {
        let mut t = RingTable::new(&order());
        for id in [10u64, 20, 80, 90] {
            t.observe(Id(id));
        }
        // Smaller than second smallest (20) or larger than second largest (80).
        assert!(t.should_update(Id(5)));
        assert!(t.should_update(Id(15))); // 15 < 20
        assert!(!t.should_update(Id(50)));
        assert!(t.should_update(Id(85))); // 85 > 80
        assert!(t.should_update(Id(99)));
        assert!(!t.should_update(Id(10))); // already present
        // Under-full tables always accept.
        let mut small = RingTable::new(&order());
        small.observe(Id(42));
        assert!(small.should_update(Id(7)));
    }

    #[test]
    fn remove_and_repopulate() {
        let mut t = RingTable::new(&order());
        for id in [10u64, 20, 80, 90] {
            t.observe(Id(id));
        }
        assert!(t.remove(Id(20)));
        assert!(!t.remove(Id(20)));
        assert_eq!(t.len(), 3);
        t.observe(Id(15));
        assert_eq!(t.second_smallest(), Some(Id(15)));
    }

    #[test]
    fn purge_and_repair_cycle() {
        let mut t = RingTable::new(&order());
        for id in [10u64, 20, 80, 90] {
            t.observe(Id(id));
        }
        // Nodes 20 and 90 die.
        let dead = t.purge(|id| id != Id(20) && id != Id(90));
        assert_eq!(dead, vec![Id(20), Id(90)]);
        assert_eq!(t.len(), 2);
        assert!(t.needs_repair());
        // The holder re-learns survivors by routing into the ring.
        t.repair_from([Id(15), Id(85), Id(10)]);
        assert_eq!(t.entry_points(), &[Id(10), Id(15), Id(80), Id(85)]);
        assert!(!t.needs_repair());
        // Nothing to purge when everyone is alive.
        assert!(t.purge(|_| true).is_empty());
    }

    #[test]
    fn entry_points_are_sorted() {
        let mut t = RingTable::new(&order());
        for id in [90u64, 10, 80, 20] {
            t.observe(Id(id));
        }
        assert_eq!(t.entry_points(), &[Id(10), Id(20), Id(80), Id(90)]);
    }

    /// Seeded-loop replacement for the old property test: after any
    /// observation sequence the table holds exactly the two smallest
    /// and two largest distinct ids seen.
    #[test]
    fn table_converges_to_extremes() {
        let mut rng = hieras_rt::Rng::seed_from_u64(0x7ab1e);
        for case in 0..256 {
            let len = rng.random_range(1usize..64);
            let ids: Vec<u64> = (0..len).map(|_| rng.random_range(0u64..1000)).collect();
            let mut t = RingTable::new(&order());
            for &i in &ids {
                t.observe(Id(i));
            }
            let mut distinct: Vec<u64> = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            let want: Vec<Id> = if distinct.len() <= 4 {
                distinct.iter().map(|&i| Id(i)).collect()
            } else {
                let n = distinct.len();
                vec![Id(distinct[0]), Id(distinct[1]), Id(distinct[n - 2]), Id(distinct[n - 1])]
            };
            assert_eq!(t.entry_points(), &want[..], "case {case}");
        }
    }
}
