//! HIERAS configuration: hierarchy depth, landmark count, binning.

use crate::Binning;
use hieras_rt::{FromJson, Json, JsonError, ToJson};

/// Errors validating a [`HierasConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Depth must be at least 1 (1 = plain Chord, 2+ = hierarchical).
    BadDepth(usize),
    /// At least one landmark is required for depth ≥ 2.
    NoLandmarks,
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::BadDepth(d) => write!(f, "hierarchy depth must be >= 1, got {d}"),
            ConfigError::NoLandmarks => write!(f, "depth >= 2 requires at least one landmark"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// HIERAS system parameters (§2.4, §4.1).
///
/// The paper's standard setup is `depth = 2`, `landmarks = 4`,
/// paper binning boundaries — that is [`HierasConfig::paper`].
#[derive(Debug, Clone, PartialEq)]
pub struct HierasConfig {
    /// Hierarchy depth *m*: number of layers including the global ring.
    /// Depth 1 degenerates to plain Chord (useful as a built-in
    /// baseline check).
    pub depth: usize,
    /// Number of landmark nodes (the paper sweeps 2–12 in §4.4).
    pub landmarks: usize,
    /// The latency quantizer used for binning.
    pub binning: Binning,
}

impl HierasConfig {
    /// The paper's default configuration: two layers, four landmarks,
    /// `[20,100]` level boundaries.
    #[must_use]
    pub fn paper() -> Self {
        HierasConfig { depth: 2, landmarks: 4, binning: Binning::paper() }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// See [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.depth < 1 {
            return Err(ConfigError::BadDepth(self.depth));
        }
        if self.depth >= 2 && self.landmarks == 0 {
            return Err(ConfigError::NoLandmarks);
        }
        Ok(())
    }

    /// Landmark-order prefix length that names a node's ring at layer
    /// `layer` (1-based from the top; layer 1 is the global ring).
    ///
    /// Prefix refinement (DESIGN.md §3.4): layer 1 uses the empty
    /// prefix (one ring for everybody); the lowest layer (`depth`) uses
    /// the full order string — which for `depth == 2` is exactly the
    /// paper's scheme; intermediate layers interpolate, guaranteeing
    /// that rings nest.
    ///
    /// # Panics
    /// Panics if `layer` is outside `1..=depth`.
    #[must_use]
    pub fn prefix_len(&self, layer: usize) -> usize {
        assert!(
            (1..=self.depth).contains(&layer),
            "layer {layer} outside 1..={}",
            self.depth
        );
        if layer == 1 || self.depth == 1 {
            return 0;
        }
        // ceil((layer-1) * L / (depth-1))
        ((layer - 1) * self.landmarks).div_ceil(self.depth - 1)
    }
}

impl ToJson for HierasConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("depth", self.depth.to_json()),
            ("landmarks", self.landmarks.to_json()),
            ("binning", self.binning.to_json()),
        ])
    }
}

impl FromJson for HierasConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let c = HierasConfig {
            depth: v.field("depth")?,
            landmarks: v.field("landmarks")?,
            binning: v.field("binning")?,
        };
        c.validate().map_err(|e| JsonError(e.to_string()))?;
        Ok(c)
    }
}

impl Default for HierasConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = HierasConfig::paper();
        assert_eq!(c.depth, 2);
        assert_eq!(c.landmarks, 4);
        assert!(c.validate().is_ok());
        assert_eq!(c, HierasConfig::default());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = HierasConfig::paper();
        c.depth = 0;
        assert_eq!(c.validate().unwrap_err(), ConfigError::BadDepth(0));
        let mut c = HierasConfig::paper();
        c.landmarks = 0;
        assert_eq!(c.validate().unwrap_err(), ConfigError::NoLandmarks);
        // Depth 1 with zero landmarks is fine (plain Chord).
        let c = HierasConfig { depth: 1, landmarks: 0, binning: Binning::paper() };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn prefix_lengths_depth2_match_paper() {
        let c = HierasConfig { depth: 2, landmarks: 4, binning: Binning::paper() };
        assert_eq!(c.prefix_len(1), 0);
        assert_eq!(c.prefix_len(2), 4); // full order string — §2.2 exactly
    }

    #[test]
    fn prefix_lengths_interpolate_for_deeper_hierarchies() {
        let c = HierasConfig { depth: 3, landmarks: 6, binning: Binning::paper() };
        assert_eq!(c.prefix_len(1), 0);
        assert_eq!(c.prefix_len(2), 3);
        assert_eq!(c.prefix_len(3), 6);
        let c = HierasConfig { depth: 4, landmarks: 6, binning: Binning::paper() };
        assert_eq!(
            (1..=4).map(|l| c.prefix_len(l)).collect::<Vec<_>>(),
            vec![0, 2, 4, 6]
        );
    }

    #[test]
    fn prefix_lengths_are_monotone_and_nest() {
        for depth in 1..=5usize {
            for landmarks in 1..=12usize {
                let c = HierasConfig { depth, landmarks, binning: Binning::paper() };
                let mut prev = 0;
                for layer in 1..=depth {
                    let p = c.prefix_len(layer);
                    assert!(p >= prev, "depth {depth} lm {landmarks} layer {layer}");
                    assert!(p <= landmarks);
                    prev = p;
                }
                assert_eq!(c.prefix_len(depth), if depth == 1 { 0 } else { landmarks });
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn prefix_len_rejects_bad_layer() {
        let _ = HierasConfig::paper().prefix_len(3);
    }
}
