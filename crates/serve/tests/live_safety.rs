//! Snapshot-safety stress tests over real routing state.
//!
//! The unit tests in `epoch.rs` hammer the reclamation protocol with
//! tiny integer payloads; here the payloads are full `ServeSnapshot`s
//! — multi-ring HIERAS hierarchies — and the readers are the real
//! free-running serving loop. Two invariants under fire:
//!
//! 1. no reader ever adopts a torn snapshot (epoch checksum holds on
//!    every adoption, while the maintainer publishes as fast as the
//!    schedule allows);
//! 2. reclamation never frees a snapshot a parked reader still pins,
//!    and frees everything once that reader is gone.

use hieras_rt::Executor;
use hieras_serve::{epoch_pair, ServeConfig, ServeEngine, ServeSnapshot, TelemetryConfig};
use hieras_sim::{ChurnConfig, Experiment, ExperimentConfig, Lifetime};

fn world(nodes: usize) -> Experiment {
    let mut cfg = ExperimentConfig::paper(nodes, 23);
    cfg.requests = 100;
    Experiment::build(cfg)
}

/// Free-running readers against a maintainer publishing one epoch per
/// event: the highest snapshot-flip rate the schedule can produce. The
/// serving loop itself asserts the checksum on every adoption, so this
/// test failing means a reader saw a mix of two epochs.
#[test]
fn free_running_readers_never_adopt_a_torn_snapshot() {
    let exp = world(120);
    let engine = ServeEngine::new(
        &exp,
        ServeConfig {
            churn: ChurnConfig {
                initial_nodes: 100,
                arrivals: 20,
                inter_arrival: Lifetime::Fixed { ms: 150 },
                lifetime: Lifetime::Exponential { mean_ms: 30_000.0 },
                graceful_fraction: 0.5,
                horizon_ms: 15_000,
                seed: 0xdead,
            },
            readers: 3,
            // One event per epoch: publish at the maximum rate.
            events_per_epoch: 1,
            lookups_per_epoch: 32,
            // Tiny batches: readers refresh (and re-verify) constantly.
            refresh_batch: 4,
            seed: 0xbeef,
            rebin_every: 5,
            rebin_noise: 0.3,
            // Telemetry on under fire: wall windows + flight captures
            // must survive the same stress the lookups do.
            telemetry: TelemetryConfig::on(),
            // Delta and batched paths both on: the stress covers the
            // incremental maintainer and the bulk-fed reader shards.
            delta_max_ring_fraction: 0.5,
            batched: true,
            pace: 0.0,
            cache: hieras_serve::CacheConfig::off(),
            workload: hieras_sim::WorkloadModel::Uniform,
        },
    );
    let r = engine.run_live();
    assert!(r.epochs.published > 20, "the schedule must actually flip snapshots");
    assert!(r.lookups > 0, "readers must have served");
    // Readers all dropped before the final reclaim: full accounting.
    assert_eq!(r.epochs.retired, 0, "no reader left — nothing may stay retired");
    assert_eq!(r.epochs.reclaimed, r.epochs.published, "every epoch reclaims exactly once");
    assert!(r.turnover > 0.05, "stress scenario must churn >5% of the overlay");
    // The wall-clock time series assembled under stress is coherent.
    let ts = r.timeseries.expect("telemetry was on");
    assert_eq!(ts.meta.mode, "wall");
    assert_eq!(ts.total_lookups(), r.lookups, "every lookup lands in exactly one window");
    for s in &ts.slow {
        let sum: u64 = s.path.iter().map(|h| u64::from(h.ms)).sum();
        assert_eq!(sum, s.latency_ms, "flight-recorded paths reconcile under churn");
    }
}

/// A parked reader pins its snapshot — and every younger retired one —
/// through arbitrarily many publications; dropping the reader releases
/// them all.
#[test]
fn reclamation_never_frees_a_pinned_snapshot() {
    const PUBLISHES: usize = 12;
    let exp = world(40);
    let exec = Executor::new(1);
    let snap_at = |epoch: u64, live_n: u32| {
        let members: Vec<u32> = (0..live_n).collect();
        let oracle = exp
            .subset_hieras_on(&exec, &members, None, None)
            .expect("prefix memberships are valid subsets");
        ServeSnapshot::new(epoch, oracle, members.into())
    };

    let (mut pb, handle) = epoch_pair(snap_at(0, 40));
    let parked = handle.reader();
    for i in 1..=PUBLISHES {
        // Shrinking membership: every epoch is a distinct hierarchy.
        pb.publish(snap_at(i as u64, 40 - i as u32));
        assert_eq!(pb.reclaim(), 0, "publish {i}: the parked reader pins epoch 0");
    }
    let s = pb.stats();
    assert_eq!(s.retired, PUBLISHES, "all replaced snapshots wait on the parked reader");
    assert_eq!(s.lag_peak, PUBLISHES);
    // The parked reader's world is still whole and still epoch 0's.
    assert_eq!(parked.lag(), PUBLISHES as u64);
    assert!(parked.snapshot().value.verify(0), "pinned snapshot decayed while parked");
    assert_eq!(parked.snapshot().value.live_count(), 40);

    drop(parked);
    assert_eq!(pb.reclaim(), PUBLISHES, "no reader left — everything reclaims");
    assert_eq!(pb.stats().retired, 0);

    // A reader minted now starts at the newest snapshot, not epoch 0.
    let fresh = handle.reader();
    assert_eq!(fresh.snapshot().epoch, PUBLISHES as u64);
    assert!(fresh.snapshot().value.verify(PUBLISHES as u64));
    assert_eq!(fresh.snapshot().value.live_count(), 40 - PUBLISHES);
}
