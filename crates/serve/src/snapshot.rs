//! The immutable unit the serving engine publishes per epoch.

use hieras_core::HierasOracle;
use hieras_id::Id;
use hieras_rt::splitmix64;
use std::sync::Arc;

/// One epoch's routing state: the hierarchy over the live membership,
/// the membership itself, and a checksum binding the two to the epoch
/// they were published under. Readers route against this without
/// locks; [`ServeSnapshot::verify`] catches any torn mix of two
/// epochs (a membership from one, rings from another) — the invariant
/// the snapshot-safety stress test hammers.
#[derive(Debug, Clone)]
pub struct ServeSnapshot {
    /// The hierarchy over exactly the live peers (global indices).
    pub oracle: HierasOracle,
    /// Live peer indices, ascending.
    pub live: Arc<[u32]>,
    /// `splitmix64` chain over the epoch and the membership.
    pub checksum: u64,
}

impl ServeSnapshot {
    /// Assembles a snapshot for `epoch` and seals it with its
    /// checksum.
    ///
    /// # Panics
    /// Panics if the oracle's global ring does not hold exactly the
    /// live peers — a snapshot must be internally consistent at birth.
    #[must_use]
    pub fn new(epoch: u64, oracle: HierasOracle, live: Arc<[u32]>) -> Self {
        assert_eq!(
            oracle.global_ring().len(),
            live.len(),
            "oracle membership and live set disagree"
        );
        let checksum = Self::checksum_of(epoch, &live);
        ServeSnapshot { oracle, live, checksum }
    }

    fn checksum_of(epoch: u64, live: &[u32]) -> u64 {
        let mut x = splitmix64(epoch ^ 0x5e7e_5e7e_5e7e_5e7e);
        x = splitmix64(x ^ live.len() as u64);
        for &m in live {
            x = splitmix64(x ^ u64::from(m));
        }
        x
    }

    /// Recomputes the checksum against `epoch` and re-checks the
    /// ring/membership size agreement. False for any snapshot whose
    /// pieces come from two different epochs.
    #[must_use]
    pub fn verify(&self, epoch: u64) -> bool {
        self.oracle.global_ring().len() == self.live.len()
            && self.checksum == Self::checksum_of(epoch, &self.live)
    }

    /// Number of live peers.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The lowest-layer ring a live peer belongs to — the key-owner
    /// ring identity the reader-side lookup cache stores alongside
    /// each cached owner (`u32::MAX` for a peer outside every lowest
    /// ring, which a live owner never is).
    #[must_use]
    pub fn owner_ring(&self, owner: u32) -> u32 {
        self.oracle
            .layers()
            .last()
            .and_then(|l| l.ring_index_of(owner))
            .unwrap_or(u32::MAX)
    }

    /// Deterministic lookup-source + key sampler over the live set:
    /// the serving analogue of `hieras_sim::Workload::request`, indexed
    /// so any thread can draw request `i` of stream `seed` without
    /// shared state.
    #[must_use]
    pub fn request(&self, seed: u64, i: u64) -> (u32, Id) {
        let x = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let a = splitmix64(x);
        let b = splitmix64(a);
        (self.live[(a % self.live.len() as u64) as usize], Id(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieras_core::{Binning, HierasConfig};
    use hieras_id::IdSpace;

    fn oracle_over(live: &[u32], n: u64) -> HierasOracle {
        let ids: Arc<[Id]> = (0..n)
            .map(|i| Id(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect::<Vec<_>>()
            .into();
        let binning = Binning::paper();
        let orders = (0..n)
            .map(|i| {
                let rtts: Vec<u16> = vec![if i % 2 == 0 { 5 } else { 150 }, 30];
                binning.order(&rtts)
            })
            .collect();
        let config = HierasConfig { depth: 2, landmarks: 2, binning };
        HierasOracle::build_members_on(
            &hieras_rt::Executor::new(1),
            IdSpace::full(),
            ids,
            orders,
            live,
            config,
        )
        .expect("valid subset")
    }

    #[test]
    fn verify_accepts_its_own_epoch_and_rejects_others() {
        let live: Arc<[u32]> = vec![0, 1, 2, 5, 7].into();
        let snap = ServeSnapshot::new(3, oracle_over(&live, 8), Arc::clone(&live));
        assert!(snap.verify(3));
        assert!(!snap.verify(2), "checksum must bind the epoch");
        // A torn snapshot — membership swapped for another epoch's —
        // fails even under the right epoch.
        let other: Arc<[u32]> = vec![0, 1, 2, 5].into();
        let torn = ServeSnapshot { oracle: snap.oracle.clone(), live: other, checksum: snap.checksum };
        assert!(!torn.verify(3));
    }

    #[test]
    fn requests_stay_inside_the_live_set() {
        let live: Arc<[u32]> = vec![1, 3, 4, 6].into();
        let snap = ServeSnapshot::new(0, oracle_over(&live, 8), Arc::clone(&live));
        for i in 0..500u64 {
            let (src, _) = snap.request(42, i);
            assert!(live.contains(&src), "request {i} drew dead source {src}");
        }
        // Deterministic in (seed, index).
        assert_eq!(snap.request(42, 7), snap.request(42, 7));
        assert_ne!(snap.request(42, 7).1, snap.request(43, 7).1);
    }
}
