//! `hieras-serve` — the live serving engine: concurrent lookups under
//! churn via epoch-versioned snapshots.
//!
//! The replay world (`hieras-sim`) routes against a static oracle and
//! the churn world (`hieras-churn`) mutates membership inside a
//! sequential event loop; production needs both at once. This crate is
//! that shape:
//!
//! * [`ServeSnapshot`] — one epoch's immutable routing state: a
//!   HIERAS hierarchy built over exactly the live membership, the
//!   membership list itself, and a checksum binding both to the epoch.
//! * [`epoch_pair`] / [`Publisher`] / [`Reader`] — epoch-based
//!   publication and reclamation on `std` atomics alone: readers pin
//!   the snapshot they route against through per-reader epoch slots,
//!   the single maintenance thread swaps in new snapshots and retires
//!   old ones only once every reader has advanced past them.
//! * [`ServeEngine`] — the service loop. N readers execute
//!   allocation-free lookups against their pinned snapshot while the
//!   maintenance thread replays a churn schedule
//!   ([`hieras_churn::MembershipReplay`]) onto a private membership
//!   copy, rebuilds the hierarchy, and publishes. Three run modes:
//!   quiesced (no churn — the replay-bench baseline), deterministic
//!   (the `hieras-rt` executor arbitrates reader/maintainer
//!   interleaving in lock step, so metrics are bit-identical at any
//!   reader count), and free-running (real reader threads, wall-clock
//!   throughput).
//!
//! Observability flows through `hieras-obs` under the `serve.*`
//! namespace: published epochs, reclaim lag, the stale-read window,
//! per-reader throughput, and applied membership deltas. With
//! [`TelemetryConfig`] enabled, every run also emits *time-resolved*
//! telemetry — rotating windowed metrics with per-window tails and
//! `serve.epoch.*` health gauges, a K-slowest-lookups flight recorder
//! with full hop traces, and an SLO monitor — assembled into a
//! [`hieras_obs::TimeSeriesReport`]; every mode reports its wall-clock
//! maintenance profile as [`MaintStats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod epoch;
mod snapshot;
mod telemetry;

pub use cache::{CacheConfig, CacheStats, LookupCache};
pub use engine::{LiveReport, QuiescedReport, ServeConfig, ServeEngine, WorkloadReport};
pub use epoch::{epoch_pair, EpochHandle, EpochStats, Publisher, Reader, Versioned};
pub use snapshot::ServeSnapshot;
pub use telemetry::{MaintStats, TelemetryConfig};
