//! Popularity-aware hot-key result cache for the serve reader path.
//!
//! Real DHT traffic is Zipf-skewed: a handful of keys draw a large
//! share of lookups (DistHash replicates popular objects for exactly
//! this reason). A reader that remembers "key → owner" for those keys
//! answers them with a single direct hop instead of a multi-layer
//! route — and because the latency oracle speaks shortest-path RTTs,
//! the direct hop never costs more than the routed path.
//!
//! The design is a per-reader, allocation-free (on the lookup path)
//! **direct-mapped + small-LRU hybrid**:
//!
//! * A power-of-two array of direct-mapped slots indexed by a hash of
//!   the key — one probe, no pointer chasing.
//! * A small LRU victim array catching keys a slot collision would
//!   otherwise thrash — linear probe over a handful of entries,
//!   move-to-front on hit.
//! * A byte-wide frequency sketch gating **admission**: a key only
//!   displaces a live entry once it has been seen at least
//!   [`CacheConfig::admit_min`] times (and at least as often as the
//!   incumbent), so a uniform scan cannot evict the hot head. The
//!   sketch halves itself periodically, aging out stale popularity.
//!
//! **Staleness is impossible by construction.** Every entry is tagged
//! with the [`crate::ServeSnapshot`] checksum it was learned under —
//! the checksum binds the epoch *and* the live membership — and a
//! probe only hits on a tag match against the snapshot currently
//! pinned by the reader. An epoch advance therefore invalidates the
//! whole cache wholesale: no entry learned before a publish can
//! answer after it. [`CacheConfig::verify`] additionally re-routes
//! every hit and asserts the cached owner (and its lowest-layer ring)
//! against the authoritative route — the mode the stale-hit tests and
//! the bench's `cache_verified` flag run under.

use hieras_rt::splitmix64;

/// Knobs of the reader-side lookup cache. `off()` (the default) keeps
/// every serving path byte-identical to the pre-cache engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Master switch. Disabled, the cache allocates nothing and the
    /// lookup path takes one predictable branch.
    pub enabled: bool,
    /// log2 of the direct-mapped slot count.
    pub slots_pow: u32,
    /// Entries in the LRU victim array.
    pub lru_len: usize,
    /// Sightings (sketch estimate) a key needs before it may displace
    /// a live entry. Fresh or stale slots are filled unconditionally.
    pub admit_min: u8,
    /// log2 of the frequency-sketch counter count.
    pub sketch_pow: u32,
    /// Lookups between sketch halvings (popularity aging).
    pub halve_every: u32,
    /// Re-route every hit and assert the cached owner equals the
    /// authoritative one — the correctness-proof mode.
    pub verify: bool,
}

impl CacheConfig {
    /// Cache disabled (the default).
    #[must_use]
    pub fn off() -> Self {
        CacheConfig {
            enabled: false,
            slots_pow: 10,
            lru_len: 16,
            admit_min: 2,
            sketch_pow: 12,
            halve_every: 8192,
            verify: false,
        }
    }

    /// Cache enabled at the default geometry: 1024 direct slots, a
    /// 16-entry LRU, admission after 2 sightings, a 4096-counter
    /// sketch halved every 8192 lookups.
    #[must_use]
    pub fn on() -> Self {
        CacheConfig { enabled: true, ..CacheConfig::off() }
    }

    /// The same configuration with hit verification on.
    #[must_use]
    pub fn verified(mut self) -> Self {
        self.verify = true;
        self
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::off()
    }
}

/// Hit/miss/admission counters of one cache (merged across chunks or
/// readers by the engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from a live entry.
    pub hits: u64,
    /// Probes that fell through to a full route.
    pub misses: u64,
    /// Entries written (fresh fills and displacements).
    pub admits: u64,
    /// Wholesale invalidations — one per snapshot-checksum change.
    pub invalidations: u64,
}

impl CacheStats {
    /// Element-wise sum.
    #[must_use]
    pub fn merged(self, o: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + o.hits,
            misses: self.misses + o.misses,
            admits: self.admits + o.admits,
            invalidations: self.invalidations + o.invalidations,
        }
    }

    /// Hits over probes, 0.0 when nothing was probed.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached answer: the key, the owner it routed to, the owner's
/// lowest-layer ring, all bound to the snapshot checksum the route ran
/// under. `tag == 0` doubles as "empty" (a real checksum is a
/// splitmix64 chain — zero in practice never occurs, and a zero tag
/// merely misses).
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    tag: u64,
    key: u64,
    owner: u32,
    ring: u32,
}

/// The direct-mapped + LRU hybrid. One per reader (free-running) or
/// per executor chunk (deterministic modes — a chunk-fresh cache keeps
/// the fold bit-identical at any thread count).
#[derive(Debug, Clone)]
pub struct LookupCache {
    cfg: CacheConfig,
    slot_mask: u64,
    slots: Vec<Entry>,
    lru: Vec<Entry>,
    sketch: Vec<u8>,
    sketch_mask: u64,
    ops: u32,
    /// Checksum of the snapshot entries are currently valid under.
    bound: u64,
    /// Counters, drained by the engine at merge time.
    pub stats: CacheStats,
}

impl LookupCache {
    /// Allocates the cache (or an empty shell when disabled). All
    /// allocation happens here — the probe/insert path never touches
    /// the heap.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let (slots, lru, sketch) = if cfg.enabled {
            (
                vec![Entry::default(); 1usize << cfg.slots_pow],
                vec![Entry::default(); cfg.lru_len],
                vec![0u8; 1usize << cfg.sketch_pow],
            )
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        LookupCache {
            cfg,
            slot_mask: (1u64 << cfg.slots_pow) - 1,
            slots,
            lru,
            sketch,
            sketch_mask: (1u64 << cfg.sketch_pow) - 1,
            ops: 0,
            bound: 0,
            stats: CacheStats::default(),
        }
    }

    /// Whether probes can ever hit.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Whether hits must be re-verified against a full route.
    #[must_use]
    pub fn verify(&self) -> bool {
        self.cfg.verify
    }

    /// Binds the cache to the snapshot identified by `checksum`.
    /// A change invalidates every entry wholesale: old tags can no
    /// longer match, so no answer learned before the publish survives
    /// it. Cheap — no memory is touched.
    pub fn bind(&mut self, checksum: u64) {
        if self.cfg.enabled && self.bound != checksum {
            if self.bound != 0 {
                self.stats.invalidations += 1;
            }
            self.bound = checksum;
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (splitmix64(key) & self.slot_mask) as usize
    }

    /// Probes for `key` under the bound snapshot. A hit returns the
    /// cached `(owner, owner_ring)`.
    #[inline]
    pub fn get(&mut self, key: u64) -> Option<(u32, u32)> {
        debug_assert!(self.cfg.enabled, "probe on a disabled cache");
        let s = self.slot_of(key);
        let e = self.slots[s];
        if e.tag == self.bound && e.key == key {
            self.stats.hits += 1;
            return Some((e.owner, e.ring));
        }
        for i in 0..self.lru.len() {
            let v = self.lru[i];
            if v.tag == self.bound && v.key == key {
                // Move-to-front: the victim array is tiny, rotation is
                // a handful of register moves.
                self.lru.copy_within(0..i, 1);
                self.lru[0] = v;
                self.stats.hits += 1;
                return Some((v.owner, v.ring));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Offers a freshly routed answer. Fresh or stale slots are filled
    /// unconditionally; a live incumbent is displaced (demoted to the
    /// LRU front) only once the sketch says the new key is at least as
    /// popular and has been seen `admit_min` times — uniform traffic
    /// therefore cannot thrash the hot head.
    #[inline]
    pub fn insert(&mut self, key: u64, owner: u32, ring: u32) {
        debug_assert!(self.cfg.enabled, "insert on a disabled cache");
        self.age();
        let freq = {
            let c = self.sketch_index(key);
            self.sketch[c] = self.sketch[c].saturating_add(1);
            self.sketch[c]
        };
        let s = self.slot_of(key);
        let e = self.slots[s];
        let entry = Entry { tag: self.bound, key, owner, ring };
        if e.tag != self.bound {
            self.slots[s] = entry;
            self.stats.admits += 1;
            return;
        }
        let incumbent = self.sketch_index(e.key);
        if freq >= self.cfg.admit_min && freq >= self.sketch[incumbent] {
            // Demote the incumbent to the LRU front rather than
            // dropping it — a slot collision between two hot keys
            // keeps both answerable.
            if !self.lru.is_empty() {
                let last = self.lru.len() - 1;
                self.lru.copy_within(0..last, 1);
                self.lru[0] = e;
            }
            self.slots[s] = entry;
            self.stats.admits += 1;
        }
    }

    #[inline]
    fn sketch_index(&self, key: u64) -> usize {
        (splitmix64(key ^ 0x5ce7_c4f2_9b1d_7e55) & self.sketch_mask) as usize
    }

    /// Periodic popularity aging: halve every sketch counter.
    #[inline]
    fn age(&mut self) {
        self.ops += 1;
        if self.ops >= self.cfg.halve_every {
            self.ops = 0;
            for c in &mut self.sketch {
                *c >>= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUM: u64 = 0xabcd_ef01_2345_6789;

    #[test]
    fn disabled_cache_allocates_nothing() {
        let c = LookupCache::new(CacheConfig::off());
        assert!(!c.enabled());
        assert_eq!(c.slots.capacity(), 0);
        assert_eq!(c.sketch.capacity(), 0);
    }

    #[test]
    fn fills_fresh_slots_and_hits_them() {
        let mut c = LookupCache::new(CacheConfig::on());
        c.bind(SUM);
        assert_eq!(c.get(7), None);
        c.insert(7, 42, 3);
        assert_eq!(c.get(7), Some((42, 3)));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.admits, 1);
    }

    #[test]
    fn epoch_advance_invalidates_wholesale() {
        let mut c = LookupCache::new(CacheConfig::on());
        c.bind(SUM);
        c.insert(7, 42, 3);
        assert_eq!(c.get(7), Some((42, 3)));
        c.bind(SUM ^ 1);
        assert_eq!(c.get(7), None, "no entry survives a publish");
        assert_eq!(c.stats.invalidations, 1);
        // Rebinding the old checksum is a *new* epoch to the cache —
        // the entry was overwritten-by-tag, not restored.
        c.insert(7, 43, 2);
        assert_eq!(c.get(7), Some((43, 2)));
    }

    #[test]
    fn cold_keys_cannot_displace_a_live_entry() {
        let cfg = CacheConfig { slots_pow: 0, lru_len: 0, ..CacheConfig::on() };
        let mut c = LookupCache::new(cfg);
        c.bind(SUM);
        // One slot: key A becomes resident and popular.
        c.insert(1, 10, 0);
        for _ in 0..4 {
            assert_eq!(c.get(1), Some((10, 0)));
            c.insert(1, 10, 0);
        }
        // A cold key seen once shares the slot but must not evict A.
        assert_eq!(c.get(2), None);
        c.insert(2, 20, 0);
        assert_eq!(c.get(1), Some((10, 0)), "hot entry survived the scan");
    }

    #[test]
    fn popular_key_displaces_into_lru_not_oblivion() {
        let cfg = CacheConfig { slots_pow: 0, lru_len: 4, ..CacheConfig::on() };
        let mut c = LookupCache::new(cfg);
        c.bind(SUM);
        c.insert(1, 10, 0);
        // Key 2 reaches the admission threshold and takes the slot;
        // key 1 demotes into the LRU and stays answerable.
        c.insert(2, 20, 0);
        c.insert(2, 20, 0);
        assert_eq!(c.get(2), Some((20, 0)));
        assert_eq!(c.get(1), Some((10, 0)), "displaced entry lives in the LRU");
    }

    #[test]
    fn stats_merge_and_rate() {
        let a = CacheStats { hits: 3, misses: 1, admits: 2, invalidations: 0 };
        let b = CacheStats { hits: 1, misses: 3, admits: 1, invalidations: 2 };
        let m = a.merged(b);
        assert_eq!(m.hits, 4);
        assert_eq!(m.misses, 4);
        assert_eq!(m.invalidations, 2);
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
