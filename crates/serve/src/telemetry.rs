//! Serving-side telemetry configuration and maintenance-path stats.
//!
//! The windowed machinery itself lives in `hieras-obs`
//! ([`hieras_obs::TelemetryShard`]); this module holds what is
//! serving-specific: the knobs a [`crate::ServeEngine`] run takes
//! ([`TelemetryConfig`]) and the wall-clock maintenance profile every
//! run reports ([`MaintStats`]).

use hieras_core::ArenaPoolStats;
use hieras_obs::{LogHistogram, SloSpec};
use hieras_rt::{Json, ToJson};

/// Time-resolved telemetry knobs of a serving run.
///
/// Deterministic and quiesced modes cut windows on the **sim clock**
/// (`window_ms`), so the windowed output is bit-identical at any
/// executor width; the free-running mode cuts them on the **wall
/// clock** (`wall_window_ms`). With `enabled = false` every lookup
/// pays a single predictable branch and the run's routing metrics are
/// byte-identical to a telemetry-on run — telemetry only ever
/// accumulates into its own shards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Master switch.
    pub enabled: bool,
    /// Window width on the sim clock, ms (quiesced/deterministic).
    pub window_ms: u64,
    /// Window width on the wall clock, ms (free-running).
    pub wall_window_ms: u64,
    /// Slowest lookups flight-recorded per window (0 disables the
    /// recorder).
    pub slow_k: usize,
    /// Per-window SLO to monitor, if any.
    pub slo: Option<SloSpec>,
}

impl TelemetryConfig {
    /// Telemetry disabled (the default).
    #[must_use]
    pub fn off() -> Self {
        TelemetryConfig {
            enabled: false,
            window_ms: 1_000,
            wall_window_ms: 250,
            slow_k: 4,
            slo: None,
        }
    }

    /// Telemetry enabled with the default widths: 1 s sim windows,
    /// 250 ms wall windows, 4 flight-recorded lookups per window.
    #[must_use]
    pub fn on() -> Self {
        TelemetryConfig { enabled: true, ..TelemetryConfig::off() }
    }

    /// The same configuration with an SLO attached.
    #[must_use]
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slo = Some(slo);
        self
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::off()
    }
}

/// Wall-clock profile of the maintenance path, reported by every run
/// mode (all zeros for the quiesced baseline — it has no maintainer).
///
/// These are real durations on the maintenance thread, so they stay
/// *out* of the deterministic registry and the sim-windowed telemetry;
/// they ride on the report struct instead (and, in free-running runs,
/// in the wall windows' health registries).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaintStats {
    /// Maintenance rounds executed.
    pub rounds: u64,
    /// Rounds that rebuilt and published a snapshot.
    pub rebuilds: u64,
    /// Published snapshots built incrementally from the churn delta
    /// (`rebuilds = delta_rebuilds + full_rebuilds`).
    pub delta_rebuilds: u64,
    /// Published snapshots rebuilt from scratch — the fallback when a
    /// batch touched more rings than the configured fraction, or the
    /// delta path is disabled.
    pub full_rebuilds: u64,
    /// Rounds that ran a re-bin pass.
    pub rebin_rounds: u64,
    /// Live peers whose landmark order changed across all re-bins.
    pub rebinned_peers: u64,
    /// `splitmix64` chain over every published snapshot's hierarchy
    /// digest, in publication order. Two runs of the same schedule
    /// published byte-identical snapshots iff these match — the
    /// serve-level delta-vs-full identity check.
    pub snapshot_digest: u64,
    /// Arena-recycling counters of the maintainer's pool.
    pub arena: ArenaPoolStats,
    /// End-to-end publish latency per published snapshot (hierarchy
    /// rebuild + epoch swap), µs.
    pub publish_us: LogHistogram,
    /// Hierarchy rebuild duration per published snapshot, µs.
    pub rebuild_us: LogHistogram,
    /// Re-bin pass duration per re-bin round, µs.
    pub rebin_us: LogHistogram,
    /// Every publish latency sample in publication order, µs — the raw
    /// series behind `publish_us`, kept so the bench can report exact
    /// percentiles instead of log-bucket midpoints.
    pub publish_samples: Vec<u64>,
}

impl MaintStats {
    /// Exact quantile of the raw publish-latency samples, µs (0 when
    /// nothing was published). `q` in `[0, 1]`.
    #[must_use]
    pub fn publish_quantile_us(&self, q: f64) -> u64 {
        if self.publish_samples.is_empty() {
            return 0;
        }
        let mut sorted = self.publish_samples.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[rank]
    }
}

impl ToJson for MaintStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rounds", self.rounds.to_json()),
            ("rebuilds", self.rebuilds.to_json()),
            ("delta_rebuilds", self.delta_rebuilds.to_json()),
            ("full_rebuilds", self.full_rebuilds.to_json()),
            ("rebin_rounds", self.rebin_rounds.to_json()),
            ("rebinned_peers", self.rebinned_peers.to_json()),
            ("arena_reused", self.arena.reused.to_json()),
            ("arena_returned", self.arena.returned.to_json()),
            ("arena_dropped", self.arena.dropped.to_json()),
            ("publish_us_p50", self.publish_quantile_us(0.50).to_json()),
            ("publish_us_p95", self.publish_quantile_us(0.95).to_json()),
            ("publish_us_p99", self.publish_quantile_us(0.99).to_json()),
            ("rebuild_us_p50", self.rebuild_us.quantile(0.50).to_json()),
            ("rebin_us_p50", self.rebin_us.quantile(0.50).to_json()),
            ("publish_us", self.publish_us.to_json()),
            ("rebuild_us", self.rebuild_us.to_json()),
            ("rebin_us", self.rebin_us.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_off_and_sane() {
        let c = TelemetryConfig::default();
        assert!(!c.enabled);
        assert!(c.window_ms > 0 && c.wall_window_ms > 0);
        let on = TelemetryConfig::on().with_slo(SloSpec { p99_ms: 50, max_failure_ppm: 0 });
        assert!(on.enabled);
        assert_eq!(on.window_ms, c.window_ms, "`on` only flips the switch");
        assert_eq!(on.slo.unwrap().p99_ms, 50);
    }

    #[test]
    fn maint_stats_serialize_with_derived_quantiles() {
        let mut s = MaintStats::default();
        s.rounds = 3;
        s.rebuilds = 2;
        s.delta_rebuilds = 1;
        s.full_rebuilds = 1;
        s.publish_us.record(100);
        s.publish_us.record(900);
        s.publish_samples = vec![100, 900];
        let j = s.to_json();
        assert_eq!(j.field::<u64>("rounds").unwrap(), 3);
        assert_eq!(j.field::<u64>("delta_rebuilds").unwrap(), 1);
        assert_eq!(j.field::<u64>("publish_us_p99").unwrap(), 900, "exact, not a bucket");
        assert!(j.get("rebin_us").is_some());
    }

    #[test]
    fn publish_quantiles_are_exact_over_raw_samples() {
        let mut s = MaintStats::default();
        assert_eq!(s.publish_quantile_us(0.5), 0, "empty series");
        s.publish_samples = (0..=100u64).rev().collect();
        assert_eq!(s.publish_quantile_us(0.0), 0);
        assert_eq!(s.publish_quantile_us(0.50), 50);
        assert_eq!(s.publish_quantile_us(0.95), 95);
        assert_eq!(s.publish_quantile_us(1.0), 100);
    }
}
