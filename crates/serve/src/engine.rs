//! The service loop: readers looking up, a maintainer churning.
//!
//! [`ServeEngine`] wires the three building blocks together: an
//! [`Experiment`] supplies the world (ids, landmark orders, latency
//! oracle), a [`hieras_churn::MembershipReplay`] supplies *who is
//! alive after the next K events*, and the [`crate::epoch`] machinery
//! carries each rebuilt hierarchy from the maintenance thread to the
//! readers without ever blocking a lookup.
//!
//! Three run modes, one lookup path:
//!
//! * [`ServeEngine::run_quiesced`] — no churn; the full membership at
//!   epoch 0. Replays the *exact* workload stream `hieras-sim`'s
//!   parallel replay uses (same seed derivation, same chunking), so
//!   its routing metrics are byte-identical to `bench_replay`'s — the
//!   CI identity that proves the snapshot path is faithful.
//! * [`ServeEngine::run_deterministic`] — lock-step arbitration: each
//!   round serves a fixed quota of lookups against the pinned snapshot
//!   via the deterministic executor (chunk-ordered merge), then the
//!   maintainer applies one event batch and publishes. Metrics are
//!   bit-identical at any executor width — 1, 2, or 8 "readers".
//! * [`ServeEngine::run_live`] — free-running: real reader threads
//!   refresh/lookup as fast as they can while the maintenance thread
//!   (this thread) churns and publishes at full rate. Wall-clock
//!   throughput and reclaim lag are real; routing metrics depend on
//!   the race and are reported, not asserted.

use crate::cache::{CacheConfig, CacheStats, LookupCache};
use crate::epoch::{epoch_pair, EpochStats, Publisher};
use crate::snapshot::ServeSnapshot;
use crate::telemetry::{MaintStats, TelemetryConfig};
use hieras_chord::PathBuf;
use hieras_churn::MembershipReplay;
use hieras_core::{HierasDelta, HierasOracle, LandmarkOrder, RingArenaPool};
use hieras_id::{Id, Key};
use hieras_obs::{names, HopRecord, Registry, SlowLookup, TelemetryShard, TimeSeriesReport};
use hieras_rt::{splitmix64, Executor};
use hieras_sim::{
    ChurnConfig, Experiment, Metrics, Sample, SkewParams, Workload, WorkloadModel, HOT_RANK_MAX,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Knobs of one serving run.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// The churn scenario the maintenance thread replays. Its node
    /// universe (`initial_nodes + arrivals`) must equal the
    /// experiment's peer count — arrivals are peers of the experiment
    /// that simply have not joined yet.
    pub churn: ChurnConfig,
    /// Reader threads in [`ServeEngine::run_live`] (the deterministic
    /// mode takes its width from the executor instead).
    pub readers: usize,
    /// Churn events the maintainer applies per published epoch.
    pub events_per_epoch: usize,
    /// Lookups served per round in the deterministic mode.
    pub lookups_per_epoch: usize,
    /// Lookups a free-running reader executes between two refreshes
    /// (the epoch-poll granularity of the hot loop).
    pub refresh_batch: usize,
    /// Request-stream seed (independent of the churn seed).
    pub seed: u64,
    /// Re-bin cadence: every this many maintenance rounds the
    /// maintainer re-measures every live peer's landmark RTTs under
    /// fresh multiplicative noise and re-derives its ring order.
    /// 0 disables re-binning.
    pub rebin_every: u64,
    /// Multiplicative RTT noise of a re-bin measurement (±fraction).
    pub rebin_noise: f64,
    /// Time-resolved telemetry: windowed metrics, flight recorder,
    /// SLO monitor. Off by default; turning it on never perturbs the
    /// routing metrics (telemetry accumulates in its own shards).
    pub telemetry: TelemetryConfig,
    /// Incremental-maintenance threshold: when a churn batch touches
    /// at most this fraction of the hierarchy's rings, the maintainer
    /// applies it as a delta onto the previous epoch's arenas
    /// ([`hieras_core::HierasOracle::apply_delta_on`] — byte-identical
    /// to a full rebuild by construction) instead of rebuilding from
    /// scratch; batches above the threshold fall back to the full
    /// rebuild. `0.0` disables the delta path entirely, `1.0` never
    /// falls back.
    pub delta_max_ring_fraction: f64,
    /// Free-running readers serve lookups in epoch-pinned batches of
    /// `refresh_batch`: telemetry feeds the window shard in bulk and
    /// slow-lookup qualification runs once per batch after the routing
    /// work, instead of interleaving per lookup. The reported metrics
    /// and flight-recorder top-K are identical either way; only the
    /// per-lookup overhead moves.
    pub batched: bool,
    /// Free-running maintainer pacing, in sim-milliseconds of schedule
    /// time per wall-millisecond. At `0.0` the maintainer replays
    /// churn at full rate (the schedule drains in a few ms of wall
    /// time at smoke sizes — wall-mode telemetry then sees one giant
    /// burst); at `pace > 0` it sleeps until each batch's schedule
    /// time, so a 60 s horizon at `pace = 50` spans 1.2 s of wall
    /// clock and the wall windows resolve the churn as a time series.
    /// Ignored outside [`ServeEngine::run_live`].
    pub pace: f64,
    /// Reader-side hot-key result cache ([`crate::cache`]). Disabled
    /// by default; with the cache off every serving path is
    /// byte-identical to the pre-cache engine. In the deterministic
    /// modes the cache lives in the executor-chunk accumulator (fresh
    /// per chunk — bit-identical at any width); free-running readers
    /// each keep one across their whole run, invalidated wholesale on
    /// every epoch adoption.
    pub cache: CacheConfig,
    /// Draw model of the serving request streams. `Uniform` keeps the
    /// historical derivation bit-exactly; `Skew` draws Zipf-popular
    /// keys (stable per stream seed, so hot keys stay hot across
    /// epochs within a stream) with clustered sources over the live
    /// set. Flash-crowd overlays are a replay-workload feature and are
    /// ignored here — serving streams have no fixed request count to
    /// anchor the window on.
    pub workload: WorkloadModel,
}

/// A quiesced replay of one explicit [`Workload`] — the measurement
/// unit of the skew/caching sweep.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// HIERAS routing metrics over every request.
    pub metrics: Metrics,
    /// Metrics over the hot-key subset alone (popularity rank ≤
    /// [`HOT_RANK_MAX`]; empty for uniform workloads, whose keys have
    /// no ranks).
    pub hot: Metrics,
    /// Requests served.
    pub lookups: u64,
    /// Wall-clock duration of the replay, ns.
    pub wall_ns: u64,
    /// Cache counters merged across chunks (all zero with the cache
    /// off).
    pub cache: CacheStats,
    /// `splitmix64` chain over every request's answered owner, in
    /// request order (chunk digests chained in ascending chunk order).
    /// Cached and uncached runs of the same workload answered every
    /// request identically iff these match — the per-request
    /// correctness identity the cache tests and CI assert.
    pub owner_digest: u64,
}

/// The quiesced baseline: full membership, epoch 0, no maintenance.
#[derive(Debug, Clone)]
pub struct QuiescedReport {
    /// HIERAS routing metrics over the replayed workload.
    pub metrics: Metrics,
    /// Lookups served.
    pub lookups: u64,
    /// Wall-clock duration of the replay, ns.
    pub wall_ns: u64,
    /// Windowed telemetry (one sim window — quiesced time never
    /// advances), when `cfg.telemetry.enabled`.
    pub timeseries: Option<TimeSeriesReport>,
}

/// What a live (churning) run did and measured.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// HIERAS routing metrics over every served lookup (in the
    /// free-running mode, merged in ascending reader order).
    pub metrics: Metrics,
    /// Lookups served across all readers.
    pub lookups: u64,
    /// Wall-clock duration of the serving window, ns.
    pub wall_ns: u64,
    /// Publication/reclamation counters of the epoch machinery.
    pub epochs: EpochStats,
    /// `serve.*` metrics: membership deltas, stale-read window,
    /// per-reader throughput, reclaim counters.
    pub registry: Registry,
    /// Live peers once the schedule was exhausted.
    pub final_live: u32,
    /// Membership turnover of the replayed schedule (departures over
    /// initial population).
    pub turnover: f64,
    /// Wall-clock maintenance profile: rounds, rebuilds, re-bins, and
    /// publish/rebuild/re-bin latency histograms.
    pub maint: MaintStats,
    /// Windowed telemetry (sim windows in the deterministic mode,
    /// wall windows free-running), when `cfg.telemetry.enabled`.
    pub timeseries: Option<TimeSeriesReport>,
}

impl LiveReport {
    /// Sustained throughput, lookups per second of wall time.
    #[must_use]
    pub fn lookups_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.lookups as f64 * 1e9 / self.wall_ns as f64
    }
}

/// Maintenance-side telemetry state, one per run: the window clock,
/// the health shard the maintainer publishes gauges into, and the
/// wall-clock [`MaintStats`] every mode reports.
struct MaintCtx {
    enabled: bool,
    /// Wall windows (free-running) vs sim windows (deterministic).
    wall: bool,
    window_ms: u64,
    t0: Instant,
    /// Publish time of the current snapshot on the window clock, ms —
    /// the baseline of the snapshot-age gauge.
    last_pub_ms: u64,
    shard: TelemetryShard,
    stats: MaintStats,
}

impl MaintCtx {
    fn new(tel: TelemetryConfig, wall: bool) -> Self {
        MaintCtx {
            enabled: tel.enabled,
            wall,
            window_ms: if wall { tel.wall_window_ms } else { tel.window_ms }.max(1),
            t0: Instant::now(),
            last_pub_ms: 0,
            shard: TelemetryShard::new(tel.slow_k),
            stats: MaintStats::default(),
        }
    }

    /// Now on the window clock: wall ms since the run started, or the
    /// replay's sim clock.
    fn now_ms(&self, sim_now: u64) -> u64 {
        if self.wall {
            self.t0.elapsed().as_millis() as u64
        } else {
            sim_now
        }
    }
}

/// Maintainer-private rebuild state, one per churning run: the oracle
/// of the latest published snapshot (the base every delta applies
/// onto), the arena recycling pool, and the per-batch delta scratch.
struct MaintState {
    /// The published hierarchy — shares its ring `Arc`s with the
    /// snapshot readers hold, so a delta copies only touched rings.
    cur: HierasOracle,
    pool: RingArenaPool,
    joined: Vec<u32>,
    departed: Vec<u32>,
    rebinned: Vec<u32>,
}

impl MaintState {
    /// Retired arenas a maintainer plausibly holds between epochs:
    /// a few rings per layer, three buffers each.
    const POOL_CAP: usize = 64;

    fn new(cur: HierasOracle) -> Self {
        MaintState {
            cur,
            pool: RingArenaPool::new(Self::POOL_CAP),
            joined: Vec::new(),
            departed: Vec::new(),
            rebinned: Vec::new(),
        }
    }
}

/// The serving engine over one experiment's world.
#[derive(Clone, Copy)]
pub struct ServeEngine<'a> {
    exp: &'a Experiment,
    cfg: ServeConfig,
}

impl<'a> ServeEngine<'a> {
    /// Requests per executor chunk. Matches the replay fold in
    /// `hieras-sim` (`Experiment::run_requests_on`) — the chunking
    /// defines the metric merge order, and the quiesced mode's
    /// byte-identity with `bench_replay` depends on it.
    const CHUNK: usize = 256;

    /// Creates the engine.
    ///
    /// # Panics
    /// Panics if the churn scenario's node universe does not match the
    /// experiment's peer count, or any knob is zero where it must not
    /// be.
    #[must_use]
    pub fn new(exp: &'a Experiment, cfg: ServeConfig) -> Self {
        assert_eq!(
            (cfg.churn.initial_nodes + cfg.churn.arrivals) as usize,
            exp.config.nodes,
            "churn universe must equal the experiment's peer table"
        );
        assert!(cfg.readers >= 1, "need at least one reader");
        assert!(cfg.events_per_epoch >= 1, "need at least one event per epoch");
        assert!(cfg.lookups_per_epoch >= 1, "need at least one lookup per epoch");
        assert!(cfg.refresh_batch >= 1, "need at least one lookup per refresh");
        assert!(cfg.rebin_noise >= 0.0, "noise is a magnitude");
        assert!(
            (0.0..=1.0).contains(&cfg.delta_max_ring_fraction),
            "the delta threshold is a ring fraction"
        );
        assert!(cfg.pace >= 0.0, "pace is a sim-per-wall ratio");
        ServeEngine { exp, cfg }
    }

    /// The configuration this engine runs.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// One HIERAS lookup against a snapshot, allocation-free, costed
    /// with the experiment's latency oracle — the exact evaluation the
    /// replay bench performs, so quiesced metrics reconcile.
    fn eval(&self, snap: &ServeSnapshot, src: u32, key: Key, scratch: &mut PathBuf) -> Sample {
        self.eval_owner(snap, src, key, scratch).0
    }

    /// [`Self::eval`] plus the key's owner — the answer the cache
    /// learns.
    fn eval_owner(
        &self,
        snap: &ServeSnapshot,
        src: u32,
        key: Key,
        scratch: &mut PathBuf,
    ) -> (Sample, u32) {
        let c = snap.oracle.eval(src, key, scratch, |a, b| self.exp.peer_latency(a, b));
        #[allow(clippy::cast_possible_truncation)] // ms sums fit u32 (replay invariant)
        let s = Sample {
            hops: c.hops,
            lower_hops: c.lower_hops,
            latency_ms: c.latency_ms as u32,
            lower_latency_ms: c.lower_latency_ms as u32,
        };
        (s, c.destination)
    }

    /// The cached lookup path. A probe hit answers with the cached
    /// owner — one direct hop, costed with the same latency oracle
    /// (shortest-path RTTs, so never dearer than the routed path); a
    /// miss routes normally and offers the learned owner to the
    /// cache's admission policy. Entries bind to `snap.checksum`, so
    /// an epoch advance invalidates them wholesale before any probe;
    /// in [`CacheConfig::verify`] mode every hit is re-routed and the
    /// cached owner (and its lowest-layer ring) asserted against the
    /// authoritative answer.
    ///
    /// With the cache disabled this is exactly [`Self::eval_owner`] —
    /// the byte-identity the cache-off CI gates rest on. The third
    /// element flags a cache hit: a hit's latency is the direct hop,
    /// not a routed path, so callers keep hits out of the
    /// flight-recorder capture (whose hop traces must reconcile with
    /// the recorded latency).
    #[inline]
    fn eval_cached(
        &self,
        snap: &ServeSnapshot,
        src: u32,
        key: Key,
        scratch: &mut PathBuf,
        cache: &mut LookupCache,
    ) -> (Sample, u32, bool) {
        if !cache.enabled() {
            let (s, owner) = self.eval_owner(snap, src, key, scratch);
            return (s, owner, false);
        }
        cache.bind(snap.checksum);
        if let Some((owner, ring)) = cache.get(key.0) {
            if cache.verify() {
                let (_, routed) = self.eval_owner(snap, src, key, scratch);
                assert_eq!(routed, owner, "stale cache hit: owner diverged from the route");
                assert_eq!(
                    snap.owner_ring(owner),
                    ring,
                    "stale cache hit: owner ring diverged from the snapshot"
                );
            }
            let latency_ms =
                if src == owner { 0 } else { u32::from(self.exp.peer_latency(src, owner)) };
            let s = Sample {
                hops: u32::from(src != owner),
                lower_hops: 0,
                latency_ms,
                lower_latency_ms: 0,
            };
            return (s, owner, true);
        }
        let (s, owner) = self.eval_owner(snap, src, key, scratch);
        cache.insert(key.0, owner, snap.owner_ring(owner));
        (s, owner, false)
    }

    /// The skewed serving workload over `live_len` live peers, or
    /// `None` for the uniform model (which keeps the historical
    /// per-stream derivation bit-exactly). Sources index the live
    /// array; flash overlays are stripped (see [`ServeConfig`]).
    fn serve_workload(&self, live_len: usize, stream: u64) -> Option<Workload> {
        match self.cfg.workload {
            WorkloadModel::Uniform => None,
            WorkloadModel::Skew(p) => Some(Workload::with_model(
                live_len.max(1) as u32,
                usize::MAX,
                stream,
                WorkloadModel::Skew(SkewParams { flash: None, ..p }),
            )),
        }
    }

    /// Draws serving request `i` of stream `stream` against `snap`:
    /// the legacy uniform sampler, or the skewed model mapped onto the
    /// live set.
    #[inline]
    fn draw(
        &self,
        snap: &ServeSnapshot,
        sw: &Option<Workload>,
        stream: u64,
        i: u64,
    ) -> (u32, Key) {
        match sw {
            None => snap.request(stream, i),
            #[allow(clippy::cast_possible_truncation)] // request indices fit usize
            Some(w) => {
                let (si, key, _) = w.request_detail(i as usize);
                (snap.live[si as usize], key)
            }
        }
    }

    /// Re-routes a lookup that qualified for the flight recorder,
    /// capturing every hop with its link latency. The hop visitor is
    /// the same `route_with` core `eval` costs through, so the
    /// captured path's summed link milliseconds equal the lookup's
    /// recorded latency exactly — the reconciliation the telemetry
    /// identity tests assert.
    fn capture(
        &self,
        snap: &ServeSnapshot,
        src: u32,
        key: Key,
        scratch: &mut PathBuf,
        window: u64,
        latency_ms: u64,
        seq: u64,
    ) -> SlowLookup {
        let mut path = Vec::new();
        let _owner = snap.oracle.route_with(src, key, scratch, |from, to, layer| {
            path.push(HopRecord { from, to, layer, ms: self.exp.peer_latency(from, to) });
        });
        SlowLookup { window, latency_ms, src, key: key.0, seq, path }
    }

    /// Records one served lookup into `shard` (and its hop trace, if
    /// it ranks among the window's slowest). A no-op unless telemetry
    /// is enabled — and even then it never touches the routing
    /// metrics.
    ///
    /// `floor` is a capture-pruning hint shared by every shard of the
    /// **same window** (callers reset it on a window change): the
    /// largest [`TelemetryShard::slow_floor`] any of them has
    /// published. A lookup strictly below it is outranked by ≥ K
    /// same-window lookups, so it skips the hop-capture re-route and
    /// takes the cheap record path. Relaxed and racy by design — a
    /// stale floor only readmits work, never drops a qualifying
    /// lookup, and the final union-truncate merge keeps the reported
    /// top-K exact at any thread count.
    #[allow(clippy::too_many_arguments)] // the full lookup identity
    #[inline]
    fn telemetry_lookup(
        &self,
        shard: &mut TelemetryShard,
        snap: &ServeSnapshot,
        src: u32,
        key: Key,
        scratch: &mut PathBuf,
        window: u64,
        latency_ms: u64,
        seq: u64,
        floor: &AtomicU64,
    ) {
        if !self.cfg.telemetry.enabled {
            return;
        }
        if latency_ms < floor.load(Ordering::Relaxed) {
            shard.lookup(window, latency_ms);
            return;
        }
        if shard.lookup_qualifies(window, latency_ms) {
            shard.admit_slow(self.capture(snap, src, key, scratch, window, latency_ms, seq));
            if let Some(f) = shard.slow_floor() {
                floor.fetch_max(f, Ordering::Relaxed);
            }
        }
    }

    /// [`Self::telemetry_lookup`] with the hop capture deferred: a
    /// qualifying lookup is admitted with an *empty* path, and the
    /// caller re-routes only the entries that survive the final top-K
    /// merge — off the timed path. Valid whenever the serving snapshot
    /// outlives the whole fold (the quiesced mode), so the deferred
    /// re-route still walks the exact snapshot the lookup was costed
    /// against.
    #[inline]
    fn telemetry_lookup_deferred(
        &self,
        shard: &mut TelemetryShard,
        src: u32,
        key: Key,
        window: u64,
        latency_ms: u64,
        seq: u64,
        floor: &AtomicU64,
    ) {
        if !self.cfg.telemetry.enabled {
            return;
        }
        if latency_ms < floor.load(Ordering::Relaxed) {
            shard.lookup(window, latency_ms);
            return;
        }
        if shard.lookup_qualifies(window, latency_ms) {
            shard.admit_slow(SlowLookup {
                window,
                latency_ms,
                src,
                key: key.0,
                seq,
                path: Vec::new(),
            });
            if let Some(f) = shard.slow_floor() {
                floor.fetch_max(f, Ordering::Relaxed);
            }
        }
    }

    /// Builds the snapshot of `epoch` over `members` with the given
    /// ring orders (the maintainer's private copy, which re-binning
    /// mutates).
    fn snapshot(
        &self,
        exec: &Executor,
        epoch: u64,
        members: Vec<u32>,
        orders: &[LandmarkOrder],
    ) -> ServeSnapshot {
        let oracle = self
            .exp
            .subset_hieras_on(exec, &members, Some(orders), None)
            .expect("live membership is a valid non-empty subset");
        ServeSnapshot::new(epoch, oracle, members.into())
    }

    /// Re-measures every live peer's landmark RTTs under fresh
    /// multiplicative noise (deterministic in `(round, peer)`) and
    /// re-derives its ring order into `orders`. Returns how many live
    /// peers changed order — the peers the next snapshot re-bins —
    /// and appends them to `changed_peers` (not cleared first).
    fn rebin(
        &self,
        round: u64,
        live: &[u32],
        orders: &mut [LandmarkOrder],
        changed_peers: &mut Vec<u32>,
    ) -> u64 {
        let binning = &self.exp.config.hieras.binning;
        let mut changed = 0u64;
        let mut rtts: Vec<u16> = Vec::with_capacity(self.exp.landmarks.len());
        let mut noise: Vec<f64> = Vec::with_capacity(self.exp.landmarks.len());
        for &p in live {
            rtts.clear();
            noise.clear();
            let router = self.exp.router_of[p as usize];
            for (j, &lm) in self.exp.landmarks.iter().enumerate() {
                rtts.push(self.exp.lat.latency(lm, router));
                let raw = splitmix64(
                    self.cfg.seed
                        ^ 0x5eb1_u64
                        ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        ^ u64::from(p).wrapping_mul(0x2545_f491_4f6c_dd1d)
                        ^ j as u64,
                );
                let u = (raw >> 11) as f64 / (1u64 << 53) as f64;
                noise.push(1.0 + self.cfg.rebin_noise * (2.0 * u - 1.0));
            }
            let o = binning.order_with_noise(&rtts, &noise);
            if o != orders[p as usize] {
                orders[p as usize] = o;
                changed_peers.push(p);
                changed += 1;
            }
        }
        changed
    }

    /// One maintenance round: apply the next event batch, re-bin if
    /// due, rebuild + publish when the membership or orders moved, and
    /// reclaim. Returns whether the schedule is exhausted.
    ///
    /// When the batch touches at most `delta_max_ring_fraction` of the
    /// hierarchy's rings, the rebuild applies the recorded membership
    /// delta onto `st.cur` — structurally sharing every untouched ring
    /// with the previous epoch and recycling retired arenas through
    /// `st.pool` — and falls back to a full rebuild otherwise. Both
    /// paths produce byte-identical snapshots (the CI-gated delta
    /// identity), so the choice is purely a cost decision.
    ///
    /// `ctx` collects the round's telemetry: wall-clock phase
    /// durations always flow into [`MaintStats`]; when telemetry is
    /// enabled the round also publishes `serve.epoch.*` health
    /// counters and gauges into its window (and, on the wall clock
    /// only, the duration histograms — wall values never enter sim
    /// windows, which must stay deterministic).
    #[allow(clippy::too_many_arguments)] // the full maintenance round state
    fn maintain(
        &self,
        exec: &Executor,
        round: u64,
        replay: &mut MembershipReplay,
        orders: &mut [LandmarkOrder],
        st: &mut MaintState,
        pb: &mut Publisher<ServeSnapshot>,
        reg: &mut Registry,
        ctx: &mut MaintCtx,
    ) -> bool {
        ctx.stats.rounds += 1;
        let delta = replay.apply_next_recording(
            self.cfg.events_per_epoch,
            &mut st.joined,
            &mut st.departed,
        );
        let mut rebin_us = 0u64;
        st.rebinned.clear();
        let rebinned = if self.cfg.rebin_every > 0 && round % self.cfg.rebin_every == 0 {
            let tr = Instant::now();
            let changed =
                self.rebin(round, &replay.live_members(), orders, &mut st.rebinned);
            rebin_us = tr.elapsed().as_micros() as u64;
            ctx.stats.rebin_rounds += 1;
            ctx.stats.rebinned_peers += changed;
            ctx.stats.rebin_us.record(rebin_us);
            changed
        } else {
            0
        };
        let published = delta.changed() || rebinned > 0;
        let mut publish_us = 0u64;
        let mut rebuild_us = 0u64;
        let mut used_delta = false;
        if published {
            // A peer that joined this very batch is not a member of the
            // base hierarchy yet — its (possibly re-binned) order rides
            // in with the join, not as a re-bin.
            st.rebinned.retain(|m| !st.joined.contains(m));
            let members = replay.live_members();
            let next = pb.published_epoch() + 1;
            let tp = Instant::now();
            let hdelta = HierasDelta {
                joined: &st.joined,
                departed: &st.departed,
                rebinned: &st.rebinned,
            };
            // Note: the touched fraction can exceed 1.0 — born rings
            // count as touched but not as existing — so 1.0 is handled
            // as the documented "never fall back", not a comparison.
            let frac = self.cfg.delta_max_ring_fraction;
            used_delta = frac >= 1.0
                || (frac > 0.0
                    && st.cur.delta_touch_stats(&hdelta, orders).fraction() <= frac);
            let oracle = if used_delta {
                st.cur
                    .apply_delta_on(exec, &hdelta, orders, &mut st.pool)
                    .expect("a recorded churn delta over the live membership is valid")
            } else {
                self.exp
                    .subset_hieras_on(exec, &members, Some(orders), None)
                    .expect("live membership is a valid non-empty subset")
            };
            let snap = ServeSnapshot::new(next, oracle.clone(), members.into());
            rebuild_us = tp.elapsed().as_micros() as u64;
            pb.publish(snap);
            publish_us = tp.elapsed().as_micros() as u64;
            st.cur = oracle;
            // Chained off the timed path: proves, run against run, that
            // the delta and full paths publish byte-identical state.
            ctx.stats.snapshot_digest =
                splitmix64(ctx.stats.snapshot_digest ^ st.cur.hierarchy_digest());
            ctx.stats.rebuilds += 1;
            if used_delta {
                ctx.stats.delta_rebuilds += 1;
            } else {
                ctx.stats.full_rebuilds += 1;
            }
            ctx.stats.rebuild_us.record(rebuild_us);
            ctx.stats.publish_us.record(publish_us);
            ctx.stats.publish_samples.push(publish_us);
            reg.inc(names::SERVE_EPOCHS_PUBLISHED);
            reg.inc_by(names::SERVE_JOINS, u64::from(delta.joins));
            reg.inc_by(names::SERVE_LEAVES, u64::from(delta.leaves));
            reg.inc_by(names::SERVE_FAILS, u64::from(delta.fails));
            reg.inc_by(names::SERVE_REBINNED, rebinned);
        }
        // Salvage retired snapshots this publisher solely owns back
        // into the arena pool — the next delta builds from them.
        let pool = &mut st.pool;
        let freed = pb.reclaim_with(|snap| snap.oracle.recycle_into(pool));
        reg.inc_by(names::SERVE_SNAPSHOTS_RECLAIMED, freed as u64);
        if ctx.enabled {
            let now = ctx.now_ms(replay.now_ms());
            let win = now / ctx.window_ms;
            let wall = ctx.wall;
            let age = now.saturating_sub(ctx.last_pub_ms);
            let backlog = pb.stats().retired;
            let h = ctx.shard.health(win);
            h.inc_by(names::SERVE_EPOCH_JOINS, u64::from(delta.joins));
            h.inc_by(names::SERVE_EPOCH_LEAVES, u64::from(delta.leaves));
            h.inc_by(names::SERVE_EPOCH_FAILS, u64::from(delta.fails));
            h.inc_by(names::SERVE_EPOCH_REBINNED, rebinned);
            h.gauge_set(names::SERVE_EPOCH_RETIRED_BACKLOG, backlog as i64);
            if published {
                h.inc(names::SERVE_EPOCH_PUBLISHED);
                h.inc(if used_delta {
                    names::SERVE_EPOCH_DELTA_REBUILDS
                } else {
                    names::SERVE_EPOCH_FULL_REBUILDS
                });
                // Age of the snapshot just replaced, at replacement.
                h.gauge_set(names::SERVE_EPOCH_SNAPSHOT_AGE_MS, age as i64);
                if wall {
                    h.observe(names::SERVE_EPOCH_PUBLISH_US, publish_us);
                    h.observe(names::SERVE_EPOCH_REBUILD_US, rebuild_us);
                }
                ctx.last_pub_ms = now;
            }
            if wall && rebin_us > 0 {
                h.observe(names::SERVE_EPOCH_REBIN_US, rebin_us);
            }
        }
        delta.done
    }

    /// Publishes the run's arena-recycling counters into `reg`
    /// (`serve.epoch.arena_reuse.*`) and folds them into the
    /// maintenance profile — called once per churning run, after the
    /// maintainer loop drains.
    fn finish_maint(&self, st: &MaintState, reg: &mut Registry, ctx: &mut MaintCtx) {
        let ps = st.pool.stats();
        ctx.stats.arena = ps;
        reg.inc_by(names::SERVE_EPOCH_ARENA_REUSED, ps.reused);
        reg.inc_by(names::SERVE_EPOCH_ARENA_RETURNED, ps.returned);
        reg.inc_by(names::SERVE_EPOCH_ARENA_DROPPED, ps.dropped);
    }

    /// Finalizes a run's telemetry: folds the maintenance shard into
    /// the reader shard, assembles the [`TimeSeriesReport`], and
    /// publishes the run-level `telemetry.*` rollups into `reg` —
    /// deterministic values only, so the deterministic mode's registry
    /// identity holds at any width.
    fn finish_telemetry(
        &self,
        readers: TelemetryShard,
        ctx: MaintCtx,
        reg: &mut Registry,
    ) -> Option<TimeSeriesReport> {
        if !ctx.enabled {
            return None;
        }
        let mode = if ctx.wall { "wall" } else { "sim" };
        let merged = readers.merged(ctx.shard);
        let mut ts = merged.into_report(mode, ctx.window_ms, self.cfg.telemetry.slo);
        // Derive each window's cache hit-rate gauge from its counters
        // (counters sum across shards; a ratio could not).
        for w in &mut ts.windows {
            let probes = w.health.counter(names::SERVE_CACHE_WINDOW_LOOKUPS);
            if probes > 0 {
                let hits = w.health.counter(names::SERVE_CACHE_WINDOW_HITS);
                #[allow(clippy::cast_possible_wrap)] // ppm fits i64
                w.health
                    .gauge_set(names::SERVE_CACHE_HIT_RATE_PPM, (hits * 1_000_000 / probes) as i64);
            }
        }
        reg.gauge_set(names::TELEMETRY_WINDOWS, ts.window_count() as i64);
        reg.inc_by(names::TELEMETRY_SLOW_LOOKUPS, ts.slow.len() as u64);
        reg.inc_by(names::TELEMETRY_SLO_BREACHES, ts.breaches.len() as u64);
        Some(ts)
    }

    /// The quiesced baseline: the full membership served at epoch 0,
    /// replaying the same `(source, key)` stream as
    /// `Experiment::run_requests_on` with the same chunked merge — the
    /// resulting HIERAS metrics are byte-identical to the replay
    /// bench's at any executor width.
    #[must_use]
    pub fn run_quiesced(&self, exec: &Executor, requests: usize) -> QuiescedReport {
        let n = self.exp.config.nodes;
        let members: Vec<u32> = (0..n as u32).collect();
        let snap = self.snapshot(exec, 0, members, &self.exp.orders);
        assert!(snap.verify(0), "freshly built snapshot failed verification");
        let w = Workload::new(n as u32, requests, self.exp.config.seed ^ 0x517c_c1b7);
        let tel = self.cfg.telemetry;
        // Quiesced time never advances — one sim window, so one
        // capture-pruning floor spans every chunk of the run.
        let floor = AtomicU64::new(0);
        let t0 = Instant::now();
        let (metrics, _, shard) = exec.par_fold(
            requests,
            Self::CHUNK,
            || (Metrics::default(), PathBuf::new(), TelemetryShard::new(tel.slow_k)),
            |acc, i| {
                let (src, key) = w.request(i);
                let s = self.eval(&snap, src, key, &mut acc.1);
                // seq = the request index. Hop captures are deferred:
                // the snapshot outlives the fold, so only the final
                // top-K pays the capture re-route, after the clock
                // stops.
                self.telemetry_lookup_deferred(
                    &mut acc.2,
                    src,
                    key,
                    0,
                    u64::from(s.latency_ms),
                    i as u64,
                    &floor,
                );
                acc.0.record(s);
            },
            |a, b| (a.0.merged(b.0), a.1, a.2.merged(b.2)),
        );
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let timeseries = tel.enabled.then(|| {
            let mut ts = shard.into_report("sim", tel.window_ms.max(1), tel.slo);
            let mut scratch = PathBuf::new();
            for rec in &mut ts.slow {
                *rec = self.capture(
                    &snap,
                    rec.src,
                    Id(rec.key),
                    &mut scratch,
                    rec.window,
                    rec.latency_ms,
                    rec.seq,
                );
            }
            ts
        });
        QuiescedReport { metrics, lookups: requests as u64, wall_ns, timeseries }
    }

    /// Replays an explicit [`Workload`] against the quiesced epoch-0
    /// snapshot through the cached lookup path ([`Self::eval_cached`])
    /// — the measurement mode of the skew/caching sweep. Telemetry
    /// does not ride along (the timed skew rows run lean; windowed
    /// cache telemetry comes from the churning modes); what it reports
    /// instead is the hot-key-subset metrics, the merged cache
    /// counters, and the per-request owner digest.
    ///
    /// With the cache disabled and the uniform workload at the replay
    /// seed derivation, `metrics` is byte-identical to
    /// [`Self::run_quiesced`]'s — the CI cache-off identity.
    /// Determinism: the cache lives in the chunk accumulator, so the
    /// whole report is bit-identical at any executor width.
    ///
    /// # Panics
    /// Panics if the workload draws sources outside the experiment's
    /// peer range, or (in [`CacheConfig::verify`] mode) if any cache
    /// hit disagrees with the authoritative route.
    #[must_use]
    pub fn run_quiesced_workload(&self, exec: &Executor, w: &Workload) -> WorkloadReport {
        let n = self.exp.config.nodes;
        assert!(w.nodes as usize <= n, "workload sources exceed the experiment's peers");
        let members: Vec<u32> = (0..n as u32).collect();
        let snap = self.snapshot(exec, 0, members, &self.exp.orders);
        assert!(snap.verify(0), "freshly built snapshot failed verification");
        let ccfg = self.cfg.cache;
        let t0 = Instant::now();
        let (metrics, hot, _, cache, owner_digest) = exec.par_fold(
            w.requests,
            Self::CHUNK,
            || {
                (
                    Metrics::default(),
                    Metrics::default(),
                    PathBuf::new(),
                    LookupCache::new(ccfg),
                    0u64,
                )
            },
            |acc, i| {
                let (src, key, rank) = w.request_detail(i);
                let (s, owner, _) = self.eval_cached(&snap, src, key, &mut acc.2, &mut acc.3);
                acc.4 = splitmix64(acc.4 ^ (u64::from(owner) + 1));
                acc.0.record(s);
                if rank.map_or(false, |r| r <= HOT_RANK_MAX) {
                    acc.1.record(s);
                }
            },
            |a, b| {
                (
                    a.0.merged(b.0),
                    a.1.merged(b.1),
                    a.2,
                    {
                        let mut c = a.3;
                        c.stats = c.stats.merged(b.3.stats);
                        c
                    },
                    splitmix64(a.4 ^ b.4),
                )
            },
        );
        let wall_ns = t0.elapsed().as_nanos() as u64;
        WorkloadReport {
            metrics,
            hot,
            lookups: w.requests as u64,
            wall_ns,
            cache: cache.stats,
            owner_digest,
        }
    }

    /// Deterministic serving: the executor arbitrates the
    /// reader/maintainer interleaving in lock step. Each round serves
    /// `lookups_per_epoch` requests against the pinned snapshot
    /// (chunk-ordered parallel fold — bit-identical at any executor
    /// width), then runs one maintenance round, until the schedule is
    /// exhausted; the final snapshot serves a round too. Every adopted
    /// snapshot is checksum-verified against its epoch.
    #[must_use]
    pub fn run_deterministic(&self, exec: &Executor) -> LiveReport {
        let schedule = self.cfg.churn.schedule();
        let turnover = schedule.turnover(self.cfg.churn.initial_nodes);
        let mut replay = MembershipReplay::new(self.cfg.churn.initial_nodes, schedule);
        let mut orders: Vec<LandmarkOrder> = self.exp.orders.clone();
        let snap0 = self.snapshot(exec, 0, replay.live_members(), &orders);
        let mut st = MaintState::new(snap0.oracle.clone());
        let (mut pb, handle) = epoch_pair(snap0);
        let mut reader = handle.reader();
        assert!(reader.snapshot().value.verify(0), "initial snapshot failed verification");
        let mut reg = Registry::new();
        let mut metrics = Metrics::default();
        let mut series = TelemetryShard::new(self.cfg.telemetry.slow_k);
        let mut ctx = MaintCtx::new(self.cfg.telemetry, false);
        let mut lookups = 0u64;
        let mut round = 0u64;
        let mut cache_total = CacheStats::default();
        // Capture-pruning floor, shared by every chunk of a round and
        // carried across rounds until the sim window advances.
        let floor = AtomicU64::new(0);
        let mut floor_win = 0u64;
        let t0 = Instant::now();
        loop {
            if let Some(e) = reader.refresh() {
                assert!(reader.snapshot().value.verify(e), "torn snapshot adopted at epoch {e}");
            }
            reg.observe(names::SERVE_STALE_EPOCHS, reader.lag());
            let v = reader.snapshot();
            let stream =
                splitmix64(self.cfg.seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let sw = self.serve_workload(v.value.live_count(), stream);
            // Every lookup of a round lands in the window the sim
            // clock sits in — a round-level constant, so the windowed
            // fold is identical at any executor width.
            let win = replay.now_ms() / ctx.window_ms;
            if win != floor_win {
                floor.store(0, Ordering::Relaxed);
                floor_win = win;
            }
            if ctx.enabled {
                let h = series.health(win);
                h.gauge_set(names::SERVE_EPOCH_READER_LAG, reader.lag() as i64);
            }
            let (m, _, shard, rcache) = exec.par_fold(
                self.cfg.lookups_per_epoch,
                Self::CHUNK,
                || {
                    (
                        Metrics::default(),
                        PathBuf::new(),
                        TelemetryShard::new(self.cfg.telemetry.slow_k),
                        // Chunk-fresh: the cache state a lookup sees is
                        // a function of its chunk alone, so the fold is
                        // bit-identical at any executor width.
                        LookupCache::new(self.cfg.cache),
                    )
                },
                |acc, i| {
                    let (src, key) = self.draw(&v.value, &sw, stream, i as u64);
                    let (s, _, hit) =
                        self.eval_cached(&v.value, src, key, &mut acc.1, &mut acc.3);
                    if hit {
                        // A hit's latency is a direct hop — recorded,
                        // but never flight-captured (a re-route would
                        // not reconcile with it).
                        if self.cfg.telemetry.enabled {
                            acc.2.lookup(win, u64::from(s.latency_ms));
                        }
                    } else {
                        self.telemetry_lookup(
                            &mut acc.2,
                            &v.value,
                            src,
                            key,
                            &mut acc.1,
                            win,
                            u64::from(s.latency_ms),
                            (round << 32) | i as u64,
                            &floor,
                        );
                    }
                    acc.0.record(s);
                },
                |a, b| {
                    (a.0.merged(b.0), a.1, a.2.merged(b.2), {
                        let mut c = a.3;
                        c.stats = c.stats.merged(b.3.stats);
                        c
                    })
                },
            );
            metrics = metrics.merged(m);
            series = series.merged(shard);
            if self.cfg.cache.enabled {
                cache_total = cache_total.merged(rcache.stats);
                if ctx.enabled {
                    let h = series.health(win);
                    h.inc_by(names::SERVE_CACHE_WINDOW_HITS, rcache.stats.hits);
                    h.inc_by(
                        names::SERVE_CACHE_WINDOW_LOOKUPS,
                        rcache.stats.hits + rcache.stats.misses,
                    );
                }
            }
            lookups += self.cfg.lookups_per_epoch as u64;
            reg.inc_by(names::SERVE_LOOKUPS, self.cfg.lookups_per_epoch as u64);
            if replay.is_done() {
                break;
            }
            round += 1;
            self.maintain(
                exec,
                round,
                &mut replay,
                &mut orders,
                &mut st,
                &mut pb,
                &mut reg,
                &mut ctx,
            );
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        reg.observe(names::SERVE_READER_LOOKUPS, lookups);
        if self.cfg.cache.enabled {
            reg.inc_by(names::SERVE_CACHE_HITS, cache_total.hits);
            reg.inc_by(names::SERVE_CACHE_MISSES, cache_total.misses);
            reg.inc_by(names::SERVE_CACHE_ADMITS, cache_total.admits);
            reg.inc_by(names::SERVE_CACHE_INVALIDATIONS, cache_total.invalidations);
        }
        drop(reader);
        let pool = &mut st.pool;
        let freed = pb.reclaim_with(|snap| snap.oracle.recycle_into(pool));
        reg.inc_by(names::SERVE_SNAPSHOTS_RECLAIMED, freed as u64);
        self.finish_maint(&st, &mut reg, &mut ctx);
        let stats = pb.stats();
        reg.gauge_set(names::SERVE_RECLAIM_LAG_PEAK, stats.lag_peak as i64);
        let maint = std::mem::take(&mut ctx.stats);
        let timeseries = self.finish_telemetry(series, ctx, &mut reg);
        LiveReport {
            metrics,
            lookups,
            wall_ns,
            epochs: stats,
            registry: reg,
            final_live: replay.live_count(),
            turnover,
            maint,
            timeseries,
        }
    }

    /// Free-running serving: `cfg.readers` real reader threads
    /// refresh/verify/lookup continuously while this thread — the one
    /// maintenance thread of the epoch contract — replays the whole
    /// schedule at full rate, publishing and reclaiming per batch.
    /// Readers stop once the schedule is exhausted; their metrics and
    /// registries merge in ascending reader order (a deterministic
    /// order over nondeterministic contents — throughput is a
    /// measurement, not a reproducible figure).
    ///
    /// Maintenance builds run on a single-thread executor by design:
    /// one maintainer, N readers, exactly the production shape.
    ///
    /// # Panics
    /// Panics (in any thread, surfaced at join) if a reader ever
    /// adopts a snapshot that fails its epoch checksum — the torn-read
    /// invariant.
    #[must_use]
    pub fn run_live(&self) -> LiveReport {
        let schedule = self.cfg.churn.schedule();
        let turnover = schedule.turnover(self.cfg.churn.initial_nodes);
        let mut replay = MembershipReplay::new(self.cfg.churn.initial_nodes, schedule);
        let mut orders: Vec<LandmarkOrder> = self.exp.orders.clone();
        let maint_exec = Executor::new(1);
        let snap0 = self.snapshot(&maint_exec, 0, replay.live_members(), &orders);
        let mut st = MaintState::new(snap0.oracle.clone());
        let (mut pb, handle) = epoch_pair(snap0);
        let stop = AtomicBool::new(false);
        let mut reg = Registry::new();
        let mut ctx = MaintCtx::new(self.cfg.telemetry, true);
        let t0 = Instant::now();
        // Readers cut wall windows on the same clock the maintainer
        // does, so both sides' health lands in the same windows.
        let win_t0 = ctx.t0;
        let win_ms = ctx.window_ms;
        let (wall_ns, mut per_reader) = std::thread::scope(|scope| {
            let stop = &stop;
            let workers: Vec<_> = (0..self.cfg.readers)
                .map(|r| {
                    let mut rd = handle.reader();
                    scope.spawn(move || {
                        let mut m = Metrics::default();
                        let mut local = Registry::new();
                        let mut shard = TelemetryShard::new(self.cfg.telemetry.slow_k);
                        let tel_on = self.cfg.telemetry.enabled;
                        // One persistent cache per reader: entries are
                        // checksum-bound, so every epoch adoption below
                        // invalidates it wholesale.
                        let mut cache = LookupCache::new(self.cfg.cache);
                        let cache_on = cache.enabled();
                        // Reader-local capture-pruning floor (the
                        // shard is reader-local too); reset when the
                        // wall window rolls.
                        let floor = AtomicU64::new(0);
                        let mut floor_win = 0u64;
                        let mut scratch = PathBuf::new();
                        // Batched-path scratch, reused across batches:
                        // the batch's latencies and its slow-candidate
                        // lookups `(src, key, latency, seq)`.
                        let mut lats: Vec<u64> = Vec::new();
                        let mut cands: Vec<(u32, u64, u64, u64)> = Vec::new();
                        let stream = splitmix64(
                            self.cfg.seed ^ (r as u64 + 1).wrapping_mul(0xd134_2543_de82_ef95),
                        );
                        let mut i = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            if let Some(e) = rd.refresh() {
                                assert!(
                                    rd.snapshot().value.verify(e),
                                    "reader {r} adopted a torn snapshot at epoch {e}"
                                );
                            }
                            local.observe(names::SERVE_STALE_EPOCHS, rd.lag());
                            let v = rd.snapshot();
                            let sw = self.serve_workload(v.value.live_count(), stream);
                            let batch_stats = cache.stats;
                            // One window probe per refresh batch keeps
                            // the per-lookup telemetry cost to a
                            // cached-window fast path.
                            let win = win_t0.elapsed().as_millis() as u64 / win_ms;
                            if tel_on {
                                if win != floor_win {
                                    floor.store(0, Ordering::Relaxed);
                                    floor_win = win;
                                }
                                shard
                                    .health(win)
                                    .gauge_set(names::SERVE_EPOCH_READER_LAG, rd.lag() as i64);
                            }
                            if self.cfg.batched {
                                // Batched serving: route the whole
                                // epoch-pinned batch allocation-free,
                                // then feed telemetry once — one window
                                // roll for N lookups, slow-lookup
                                // qualification and capture deferred
                                // behind the routing work. The admitted
                                // top-K is identical to the per-lookup
                                // path: the floor pre-check only skips
                                // lookups ≥ K same-window entries
                                // already outrank.
                                lats.clear();
                                cands.clear();
                                for _ in 0..self.cfg.refresh_batch {
                                    let (src, key) = self.draw(&v.value, &sw, stream, i);
                                    let (s, _, hit) = self.eval_cached(
                                        &v.value,
                                        src,
                                        key,
                                        &mut scratch,
                                        &mut cache,
                                    );
                                    if tel_on {
                                        let lat = u64::from(s.latency_ms);
                                        lats.push(lat);
                                        // Hits never flight-capture: a
                                        // re-routed path would not
                                        // reconcile with the direct-hop
                                        // latency.
                                        if !hit && lat >= floor.load(Ordering::Relaxed) {
                                            cands.push((src, key.0, lat, i));
                                        }
                                    }
                                    i += 1;
                                    m.record(s);
                                }
                                if tel_on {
                                    shard.lookup_bulk(win, &lats);
                                    for &(src, key, lat, seq) in &cands {
                                        if shard.slow_qualifies(win, lat) {
                                            shard.admit_slow(self.capture(
                                                &v.value,
                                                src,
                                                Id(key),
                                                &mut scratch,
                                                win,
                                                lat,
                                                seq,
                                            ));
                                            if let Some(f) = shard.slow_floor() {
                                                floor.fetch_max(f, Ordering::Relaxed);
                                            }
                                        }
                                    }
                                }
                            } else {
                                for _ in 0..self.cfg.refresh_batch {
                                    let (src, key) = self.draw(&v.value, &sw, stream, i);
                                    let (s, _, hit) = self.eval_cached(
                                        &v.value,
                                        src,
                                        key,
                                        &mut scratch,
                                        &mut cache,
                                    );
                                    if tel_on {
                                        if hit {
                                            shard.lookup(win, u64::from(s.latency_ms));
                                        } else {
                                            self.telemetry_lookup(
                                                &mut shard,
                                                &v.value,
                                                src,
                                                key,
                                                &mut scratch,
                                                win,
                                                u64::from(s.latency_ms),
                                                i,
                                                &floor,
                                            );
                                        }
                                    }
                                    i += 1;
                                    m.record(s);
                                }
                            }
                            if cache_on && tel_on {
                                let h = shard.health(win);
                                h.inc_by(
                                    names::SERVE_CACHE_WINDOW_HITS,
                                    cache.stats.hits - batch_stats.hits,
                                );
                                h.inc_by(
                                    names::SERVE_CACHE_WINDOW_LOOKUPS,
                                    (cache.stats.hits + cache.stats.misses)
                                        - (batch_stats.hits + batch_stats.misses),
                                );
                            }
                        }
                        local.inc_by(names::SERVE_LOOKUPS, i);
                        local.observe(names::SERVE_READER_LOOKUPS, i);
                        if cache_on {
                            local.inc_by(names::SERVE_CACHE_HITS, cache.stats.hits);
                            local.inc_by(names::SERVE_CACHE_MISSES, cache.stats.misses);
                            local.inc_by(names::SERVE_CACHE_ADMITS, cache.stats.admits);
                            local.inc_by(
                                names::SERVE_CACHE_INVALIDATIONS,
                                cache.stats.invalidations,
                            );
                        }
                        (m, local, shard)
                    })
                })
                .collect();
            let mut round = 0u64;
            loop {
                // Pace the maintainer against the schedule: sleep until
                // the next batch's sim time maps onto the wall clock at
                // `pace` sim-ms per wall-ms. At 0.0, replay flat out.
                if self.cfg.pace > 0.0 {
                    if let Some(at) = replay.next_event_at() {
                        let target = Duration::from_secs_f64(at as f64 / 1000.0 / self.cfg.pace);
                        let elapsed = t0.elapsed();
                        if target > elapsed {
                            std::thread::sleep(target - elapsed);
                        }
                    }
                }
                round += 1;
                if self.maintain(
                    &maint_exec,
                    round,
                    &mut replay,
                    &mut orders,
                    &mut st,
                    &mut pb,
                    &mut reg,
                    &mut ctx,
                ) {
                    break;
                }
            }
            stop.store(true, Ordering::Release);
            let wall_ns = t0.elapsed().as_nanos() as u64;
            let per_reader: Vec<_> = workers
                .into_iter()
                .map(|w| w.join().expect("reader thread panicked"))
                .collect();
            (wall_ns, per_reader)
        });
        let mut metrics = Metrics::default();
        let mut series = TelemetryShard::new(self.cfg.telemetry.slow_k);
        for (m, local, shard) in per_reader.drain(..) {
            metrics = metrics.merged(m);
            reg.merge(&local);
            series = series.merged(shard);
        }
        let lookups = reg.counter(names::SERVE_LOOKUPS);
        let pool = &mut st.pool;
        let freed = pb.reclaim_with(|snap| snap.oracle.recycle_into(pool));
        reg.inc_by(names::SERVE_SNAPSHOTS_RECLAIMED, freed as u64);
        self.finish_maint(&st, &mut reg, &mut ctx);
        let stats = pb.stats();
        reg.gauge_set(names::SERVE_RECLAIM_LAG_PEAK, stats.lag_peak as i64);
        let maint = std::mem::take(&mut ctx.stats);
        let timeseries = self.finish_telemetry(series, ctx, &mut reg);
        LiveReport {
            metrics,
            lookups,
            wall_ns,
            epochs: stats,
            registry: reg,
            final_live: replay.live_count(),
            turnover,
            maint,
            timeseries,
        }
    }
}

// Engine-level behavior is tested where the pieces meet real worlds:
// `tests/live_safety.rs` (torn-snapshot stress, reclaim pinning) and
// `hieras-bench`'s `tests/live_identity.rs` (1/2/8-reader metric
// identity, quiesced-vs-replay byte identity).
#[cfg(test)]
mod tests {
    use super::*;
    use hieras_obs::SloSpec;
    use hieras_sim::{ExperimentConfig, Lifetime};

    fn tiny() -> (Experiment, ServeConfig) {
        let mut cfg = ExperimentConfig::paper(60, 11);
        cfg.requests = 200;
        let exp = Experiment::build(cfg);
        let serve = ServeConfig {
            churn: ChurnConfig {
                initial_nodes: 50,
                arrivals: 10,
                inter_arrival: Lifetime::Fixed { ms: 300 },
                lifetime: Lifetime::Exponential { mean_ms: 40_000.0 },
                graceful_fraction: 0.5,
                horizon_ms: 20_000,
                seed: 0xfeed,
            },
            readers: 2,
            events_per_epoch: 3,
            lookups_per_epoch: 64,
            refresh_batch: 16,
            seed: 0xabcd,
            rebin_every: 4,
            // The tiny world's landmark RTTs cluster at 40-50 and
            // 140-150 ms; ±60% reaches the 20/100 ms bounds.
            rebin_noise: 0.6,
            telemetry: TelemetryConfig::off(),
            delta_max_ring_fraction: 0.35,
            batched: false,
            pace: 0.0,
            cache: CacheConfig::off(),
            workload: WorkloadModel::Uniform,
        };
        (exp, serve)
    }

    #[test]
    fn deterministic_run_serves_every_epoch_and_reclaims_everything() {
        let (exp, cfg) = tiny();
        let engine = ServeEngine::new(&exp, cfg);
        let r = engine.run_deterministic(&Executor::new(2));
        assert!(r.epochs.published > 0, "churn must publish at least one epoch");
        assert_eq!(
            r.epochs.reclaimed + r.epochs.retired as u64,
            r.epochs.published,
            "every retired snapshot is accounted for"
        );
        assert_eq!(r.epochs.retired, 0, "no reader left, everything reclaims");
        // One serve round per maintenance round plus the initial one.
        let rounds = r.lookups / cfg.lookups_per_epoch as u64;
        assert!(rounds > r.epochs.published, "the final snapshot must serve too");
        assert_eq!(r.registry.counter(names::SERVE_LOOKUPS), r.lookups);
        // The schedule's membership arithmetic holds.
        let joins = r.registry.counter(names::SERVE_JOINS);
        let departs =
            r.registry.counter(names::SERVE_LEAVES) + r.registry.counter(names::SERVE_FAILS);
        assert_eq!(u64::from(r.final_live), 50 + joins - departs);
        assert!(r.turnover > 0.0);
    }

    #[test]
    fn rebinning_changes_orders_deterministically() {
        let (exp, cfg) = tiny();
        let engine = ServeEngine::new(&exp, cfg);
        let mut a: Vec<LandmarkOrder> = exp.orders.clone();
        let mut b: Vec<LandmarkOrder> = exp.orders.clone();
        let live: Vec<u32> = (0..60).collect();
        let mut moved = Vec::new();
        let ca = engine.rebin(4, &live, &mut a, &mut moved);
        let cb = engine.rebin(4, &live, &mut b, &mut Vec::new());
        assert_eq!(ca, cb, "re-bin must be deterministic in (round, peer)");
        assert_eq!(a, b);
        assert_eq!(moved.len() as u64, ca, "every changed peer is recorded");
        // A different round draws different noise.
        let cc = engine.rebin(8, &live, &mut b, &mut Vec::new());
        assert!(ca > 0 || cc > 0, "±60% noise must flip at least one bin boundary");
    }

    #[test]
    fn delta_maintenance_publishes_identical_snapshots() {
        let (exp, mut cfg) = tiny();
        let exec = Executor::new(2);
        cfg.delta_max_ring_fraction = 0.0;
        let full = ServeEngine::new(&exp, cfg).run_deterministic(&exec);
        assert_eq!(full.maint.delta_rebuilds, 0, "0.0 disables the delta path");
        cfg.delta_max_ring_fraction = 1.0;
        let delta = ServeEngine::new(&exp, cfg).run_deterministic(&exec);
        assert!(delta.maint.delta_rebuilds > 0, "1.0 never falls back");
        assert_eq!(delta.maint.full_rebuilds, 0);
        assert_eq!(delta.metrics, full.metrics, "routing is oblivious to the rebuild path");
        assert_eq!(
            delta.maint.snapshot_digest, full.maint.snapshot_digest,
            "every published snapshot must be byte-identical either way"
        );
        // The delta path recycles retired arenas; the full path cannot.
        assert!(delta.maint.arena.returned > 0, "retired snapshots feed the pool");
        assert!(delta.maint.arena.reused > 0, "deltas build from recycled arenas");
        assert_eq!(full.maint.arena.reused, 0);
    }

    #[test]
    #[should_panic(expected = "churn universe")]
    fn mismatched_universe_is_rejected() {
        let (exp, mut cfg) = tiny();
        cfg.churn.arrivals = 99;
        let _ = ServeEngine::new(&exp, cfg);
    }

    #[test]
    fn telemetry_never_perturbs_routing_metrics() {
        let (exp, mut cfg) = tiny();
        let exec = Executor::new(2);
        let base = ServeEngine::new(&exp, cfg).run_deterministic(&exec);
        assert!(base.timeseries.is_none(), "telemetry off reports no series");
        cfg.telemetry = TelemetryConfig::on();
        let traced = ServeEngine::new(&exp, cfg).run_deterministic(&exec);
        assert_eq!(traced.metrics, base.metrics, "telemetry must not touch routing");
        assert_eq!(traced.lookups, base.lookups);
        let ts = traced.timeseries.expect("telemetry on reports a series");
        assert_eq!(ts.meta.mode, "sim");
        assert_eq!(ts.total_lookups(), traced.lookups, "every lookup lands in a window");
        assert!(ts.window_count() >= 2, "a 20 s horizon spans several 1 s windows");
        assert!(!ts.slow.is_empty(), "the flight recorder must capture something");
        for s in &ts.slow {
            let sum: u64 = s.path.iter().map(|h| u64::from(h.ms)).sum();
            assert_eq!(sum, s.latency_ms, "hop trace must reconcile with the latency");
        }
        // The maintenance profile reports in both runs, telemetry or not.
        assert!(base.maint.rounds > 0 && traced.maint.rebuilds > 0);
        assert_eq!(
            traced.maint.rebuilds,
            traced.registry.counter(names::SERVE_EPOCHS_PUBLISHED),
            "maint stats reconcile with the registry"
        );
        // Health rollup: per-window epoch counters sum to the run totals.
        let published: u64 = ts
            .windows
            .iter()
            .map(|w| w.health.counter(names::SERVE_EPOCH_PUBLISHED))
            .sum();
        assert_eq!(published, traced.epochs.published, "windowed publishes sum to the total");
    }

    #[test]
    fn slo_breaches_are_recorded_with_epoch_context() {
        let (exp, mut cfg) = tiny();
        // An impossible SLO: every populated window breaches.
        cfg.telemetry =
            TelemetryConfig::on().with_slo(SloSpec { p99_ms: 0, max_failure_ppm: 0 });
        let r = ServeEngine::new(&exp, cfg).run_deterministic(&Executor::new(1));
        let ts = r.timeseries.expect("telemetry on");
        assert_eq!(ts.breaches.len(), ts.window_count(), "p99 budget 0 breaches everywhere");
        assert_eq!(
            r.registry.counter(names::TELEMETRY_SLO_BREACHES),
            ts.breaches.len() as u64
        );
        let churn_in_breaches: u64 = ts.breaches.iter().map(|b| b.churn_events).sum();
        assert!(churn_in_breaches > 0, "breach windows carry their churn events");
    }

    #[test]
    fn cache_off_uniform_workload_replay_is_the_quiesced_identity() {
        let (exp, cfg) = tiny();
        let exec = Executor::new(2);
        let engine = ServeEngine::new(&exp, cfg);
        let base = engine.run_quiesced(&exec, 200);
        let w = Workload::new(60, 200, exp.config.seed ^ 0x517c_c1b7);
        let r = engine.run_quiesced_workload(&exec, &w);
        assert_eq!(r.metrics, base.metrics, "cache off + uniform stream is the quiesced path");
        assert_eq!(r.cache, CacheStats::default(), "a disabled cache counts nothing");
        assert_eq!(r.hot.requests, 0, "uniform keys carry no popularity ranks");
        assert_eq!(r.lookups, 200);
    }

    #[test]
    fn cached_replay_answers_every_request_identically() {
        let (exp, mut cfg) = tiny();
        let exec = Executor::new(2);
        let w = Workload::with_model(
            60,
            4096,
            99,
            WorkloadModel::Skew(SkewParams::zipf(0.99)),
        );
        let cold = ServeEngine::new(&exp, cfg).run_quiesced_workload(&exec, &w);
        assert_eq!(cold.cache, CacheStats::default());
        assert!(cold.hot.requests > 0, "a Zipf stream must draw hot-rank keys");
        // Verify mode: every hit is re-routed and cross-checked against
        // the authoritative answer inside eval_cached.
        cfg.cache = CacheConfig::on().verified();
        let warm = ServeEngine::new(&exp, cfg).run_quiesced_workload(&exec, &w);
        assert_eq!(
            warm.owner_digest, cold.owner_digest,
            "cached and uncached runs must answer every request with the same owner"
        );
        assert_eq!(warm.hot.requests, cold.hot.requests);
        assert!(warm.cache.hits > 0, "hot keys repeat within a chunk");
        assert_eq!(warm.cache.invalidations, 0, "one epoch, one binding");
        // A hit answers with the direct src→owner hop, and peer latency
        // is shortest-path: never slower than the routed path it skips.
        assert!(warm.metrics.total_latency_ms <= cold.metrics.total_latency_ms);
        assert!(
            warm.hot.latency_cdf().quantile(0.5) <= cold.hot.latency_cdf().quantile(0.5),
            "cache hits cannot slow the hot subset down"
        );
    }

    #[test]
    fn cached_deterministic_serving_is_identical_at_any_width() {
        let (exp, mut cfg) = tiny();
        cfg.cache = CacheConfig::on();
        cfg.workload = WorkloadModel::Skew(SkewParams {
            // A small key universe so even 64-lookup rounds re-draw
            // hot keys inside one chunk-scoped cache.
            key_universe: 128,
            ..SkewParams::zipf(1.1)
        });
        cfg.telemetry = TelemetryConfig::on();
        let engine = ServeEngine::new(&exp, cfg);
        let base = engine.run_deterministic(&Executor::new(1));
        assert!(
            base.registry.counter(names::SERVE_CACHE_HITS) > 0,
            "a 128-key Zipf(1.1) stream must hit the chunk cache"
        );
        assert_eq!(
            base.registry.counter(names::SERVE_CACHE_HITS)
                + base.registry.counter(names::SERVE_CACHE_MISSES),
            base.lookups,
            "every lookup probes the cache exactly once"
        );
        for width in [2, 8] {
            let r = engine.run_deterministic(&Executor::new(width));
            assert_eq!(r.metrics, base.metrics, "width {width} must not move a metric");
            assert_eq!(r.registry, base.registry, "width {width} must not move a counter");
        }
        // The per-window hit-rate gauge is derived wherever the window
        // saw cache probes.
        let ts = base.timeseries.expect("telemetry on");
        let mut derived = 0;
        for w in &ts.windows {
            let probes = w.health.counter(names::SERVE_CACHE_WINDOW_LOOKUPS);
            if probes > 0 {
                let ppm = w
                    .health
                    .gauge(names::SERVE_CACHE_HIT_RATE_PPM)
                    .expect("probed windows carry the hit-rate gauge");
                assert!((0..=1_000_000).contains(&ppm));
                assert!(w.health.counter(names::SERVE_CACHE_WINDOW_HITS) <= probes);
                derived += 1;
            }
        }
        assert!(derived > 0, "at least one window must have cache activity");
    }

    #[test]
    fn live_readers_verify_cached_hits_across_epoch_flips() {
        let (exp, mut cfg) = tiny();
        // Verified hits under real churn: a stale cached answer served
        // after an epoch flip would panic inside eval_cached.
        cfg.cache = CacheConfig::on().verified();
        cfg.workload = WorkloadModel::Skew(SkewParams {
            key_universe: 128,
            ..SkewParams::zipf(1.1)
        });
        // Pace the maintainer (~50 ms of wall clock for the 20 s
        // schedule) so readers serve across many epoch flips.
        cfg.pace = 400.0;
        let r = ServeEngine::new(&exp, cfg).run_live();
        assert!(r.lookups > 0);
        assert!(
            r.registry.counter(names::SERVE_CACHE_HITS) > 0,
            "hot keys must hit between epoch flips"
        );
        assert!(
            r.registry.counter(names::SERVE_CACHE_INVALIDATIONS) > 0,
            "every adopted epoch re-binds (and so invalidates) the reader caches"
        );
        assert_eq!(
            r.registry.counter(names::SERVE_CACHE_HITS)
                + r.registry.counter(names::SERVE_CACHE_MISSES),
            r.lookups
        );
    }
}

