//! Epoch-based snapshot publication and reclamation, in safe Rust.
//!
//! One maintenance thread owns a [`Publisher`]; any number of reader
//! threads own [`Reader`]s minted from the shared [`EpochHandle`].
//! The publisher installs immutable snapshots ([`Versioned`]) under a
//! monotonically increasing epoch; each reader pins the snapshot it is
//! currently routing against through a cache-line-aligned epoch slot.
//! A retired snapshot is reclaimed only once every live reader has
//! advanced past its epoch — the classic epoch-based-reclamation
//! contract, here enforced with `Arc` reference counts underneath so a
//! protocol bug can cost memory (a leak, surfaced by the
//! `serve.reclaim_lag_peak` gauge) but never a torn read.
//!
//! Hot paths:
//! - a reader that is up to date pays one `Acquire` load and a compare
//!   per [`Reader::refresh`]; lookups themselves touch no atomics.
//! - the publisher locks the current-snapshot slot only on publish and
//!   reader registration, never per lookup.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A snapshot tagged with the epoch it was published under.
#[derive(Debug)]
pub struct Versioned<T> {
    /// Publication epoch: 0 for the initial snapshot, then +1 per
    /// [`Publisher::publish`].
    pub epoch: u64,
    /// The immutable snapshot payload.
    pub value: T,
}

/// One reader's pinned epoch, aligned to its own cache line so reader
/// heartbeats never false-share with their neighbours.
#[derive(Debug)]
#[repr(align(128))]
struct ReaderSlot {
    /// Epoch of the snapshot this reader currently holds. Only ever
    /// increases; stored *after* the reader swapped its cached `Arc`,
    /// so the slot never claims an epoch newer than what is held.
    epoch: AtomicU64,
    /// Cleared by `Reader::drop`; the publisher prunes dead slots.
    active: AtomicBool,
}

#[derive(Debug)]
struct Shared<T> {
    /// Latest published epoch (readers poll this without locking).
    published: AtomicU64,
    /// The latest snapshot. Locked only on publish / refresh /
    /// registration — transitions, never per lookup.
    current: Mutex<Arc<Versioned<T>>>,
    /// Epoch slots of every reader ever minted (dead ones pruned at
    /// reclaim time).
    readers: Mutex<Vec<Arc<ReaderSlot>>>,
}

/// Counters the publisher accumulates across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Epochs published (excluding the initial epoch 0).
    pub published: u64,
    /// Retired snapshots whose publisher reference has been dropped.
    pub reclaimed: u64,
    /// Retired snapshots still awaiting slow readers.
    pub retired: usize,
    /// Peak size of the retired list — the reclaim lag high-water mark.
    pub lag_peak: usize,
}

/// The single writer: publishes snapshots and reclaims retired ones.
#[derive(Debug)]
pub struct Publisher<T> {
    shared: Arc<Shared<T>>,
    /// Snapshots replaced but possibly still read. Publisher-private:
    /// exactly one maintenance thread exists by construction.
    retired: Vec<Arc<Versioned<T>>>,
    reclaimed: u64,
    lag_peak: usize,
}

impl<T> Publisher<T> {
    /// Installs `value` as the next epoch and retires the previous
    /// snapshot. Returns the new epoch. Readers observe the flip via
    /// the published-epoch counter; in-flight lookups keep routing
    /// against whatever snapshot they pinned.
    pub fn publish(&mut self, value: T) -> u64 {
        let epoch = self.shared.published.load(Ordering::Relaxed) + 1;
        let next = Arc::new(Versioned { epoch, value });
        let old = {
            let mut cur = self.shared.current.lock().expect("reader panicked mid-refresh");
            std::mem::replace(&mut *cur, next)
        };
        self.retired.push(old);
        self.lag_peak = self.lag_peak.max(self.retired.len());
        // Release: a reader that observes the new epoch must also
        // observe the snapshot swap above.
        self.shared.published.store(epoch, Ordering::Release);
        epoch
    }

    /// Drops every retired snapshot all live readers have advanced
    /// past, and returns how many were reclaimed. A reader parked on
    /// an old epoch keeps that epoch's snapshot (and every younger
    /// retired one) alive.
    pub fn reclaim(&mut self) -> usize {
        self.reclaim_with(|_| {})
    }

    /// [`Publisher::reclaim`], but hands each reclaimed snapshot this
    /// publisher held the *last* reference to over to `salvage` instead
    /// of dropping it — the hook the serving maintainer uses to recycle
    /// retired ring arenas into its free-list. A snapshot some reader
    /// is still releasing concurrently is reclaimed but not salvaged
    /// (its final `Arc` drop frees it as usual).
    pub fn reclaim_with(&mut self, mut salvage: impl FnMut(T)) -> usize {
        let min_pinned = {
            let mut readers = self.shared.readers.lock().expect("reader panicked mid-drop");
            readers.retain(|slot| slot.active.load(Ordering::Acquire));
            readers
                .iter()
                .map(|slot| slot.epoch.load(Ordering::Acquire))
                .min()
                .unwrap_or(u64::MAX)
        };
        let before = self.retired.len();
        // A snapshot of epoch e is safe to drop once every reader pins
        // an epoch > e: slots only ever increase and are written after
        // the reader swapped its Arc, so nobody can return to e.
        let mut kept = Vec::with_capacity(self.retired.len());
        for snap in self.retired.drain(..) {
            debug_assert!(snap.epoch < self.shared.published.load(Ordering::Relaxed));
            if snap.epoch >= min_pinned {
                kept.push(snap);
            } else if let Ok(v) = Arc::try_unwrap(snap) {
                salvage(v.value);
            }
        }
        self.retired = kept;
        let freed = before - self.retired.len();
        self.reclaimed += freed as u64;
        freed
    }

    /// The latest published epoch.
    #[must_use]
    pub fn published_epoch(&self) -> u64 {
        self.shared.published.load(Ordering::Acquire)
    }

    /// Lifetime counters (published / reclaimed / retired / lag peak).
    #[must_use]
    pub fn stats(&self) -> EpochStats {
        EpochStats {
            published: self.published_epoch(),
            reclaimed: self.reclaimed,
            retired: self.retired.len(),
            lag_peak: self.lag_peak,
        }
    }
}

/// Cloneable capability to mint [`Reader`]s and poll the epoch.
#[derive(Debug)]
pub struct EpochHandle<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for EpochHandle<T> {
    fn clone(&self) -> Self {
        EpochHandle { shared: Arc::clone(&self.shared) }
    }
}

impl<T> EpochHandle<T> {
    /// Registers a new reader, pinned to the current snapshot.
    #[must_use]
    pub fn reader(&self) -> Reader<T> {
        // Registration holds the current-snapshot lock so the pinned
        // epoch and the cached Arc are the same snapshot — a publish
        // cannot slip between them.
        let cur = self.shared.current.lock().expect("publisher panicked mid-publish");
        let cached = Arc::clone(&*cur);
        drop(cur);
        let slot = Arc::new(ReaderSlot {
            epoch: AtomicU64::new(cached.epoch),
            active: AtomicBool::new(true),
        });
        self.shared.readers.lock().expect("reader panicked mid-drop").push(Arc::clone(&slot));
        Reader { shared: Arc::clone(&self.shared), slot, cached }
    }

    /// The latest published epoch.
    #[must_use]
    pub fn published_epoch(&self) -> u64 {
        self.shared.published.load(Ordering::Acquire)
    }
}

/// One reader thread's view: a cached snapshot plus its pinned epoch.
#[derive(Debug)]
pub struct Reader<T> {
    shared: Arc<Shared<T>>,
    slot: Arc<ReaderSlot>,
    cached: Arc<Versioned<T>>,
}

impl<T> Reader<T> {
    /// Adopts the latest snapshot if one was published since the last
    /// refresh, returning its epoch; `None` when already current (the
    /// hot path: one atomic load and a compare). The cached `Arc` is
    /// replaced *before* the epoch slot advances, so the slot never
    /// overstates progress.
    pub fn refresh(&mut self) -> Option<u64> {
        if self.shared.published.load(Ordering::Acquire) == self.cached.epoch {
            return None;
        }
        {
            let cur = self.shared.current.lock().expect("publisher panicked mid-publish");
            self.cached = Arc::clone(&*cur);
        }
        self.slot.epoch.store(self.cached.epoch, Ordering::Release);
        Some(self.cached.epoch)
    }

    /// The pinned snapshot. Borrow-tied to the reader, so it cannot
    /// outlive a refresh that would unpin it.
    #[must_use]
    pub fn snapshot(&self) -> &Versioned<T> {
        &self.cached
    }

    /// The latest published epoch (may be ahead of the pinned one).
    #[must_use]
    pub fn published_epoch(&self) -> u64 {
        self.shared.published.load(Ordering::Acquire)
    }

    /// How many epochs behind the published snapshot this reader is —
    /// the stale-read window of its next lookup.
    #[must_use]
    pub fn lag(&self) -> u64 {
        self.published_epoch().saturating_sub(self.cached.epoch)
    }
}

impl<T> Drop for Reader<T> {
    fn drop(&mut self) {
        self.slot.active.store(false, Ordering::Release);
    }
}

/// Creates the publisher/handle pair with `initial` at epoch 0.
#[must_use]
pub fn epoch_pair<T>(initial: T) -> (Publisher<T>, EpochHandle<T>) {
    let shared = Arc::new(Shared {
        published: AtomicU64::new(0),
        current: Mutex::new(Arc::new(Versioned { epoch: 0, value: initial })),
        readers: Mutex::new(Vec::new()),
    });
    (
        Publisher { shared: Arc::clone(&shared), retired: Vec::new(), reclaimed: 0, lag_peak: 0 },
        EpochHandle { shared },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_pin_snapshots_until_they_refresh() {
        let (mut pb, handle) = epoch_pair(10u64);
        let mut fast = handle.reader();
        let slow = handle.reader();
        assert_eq!(fast.snapshot().value, 10);
        assert_eq!(pb.publish(20), 1);
        assert_eq!(pb.publish(30), 2);
        // Both retired snapshots are pinned by `slow` at epoch 0.
        assert_eq!(pb.reclaim(), 0);
        assert_eq!(pb.stats().retired, 2);
        assert_eq!(fast.refresh(), Some(2));
        assert_eq!(fast.snapshot().value, 30);
        assert_eq!(fast.refresh(), None, "second refresh is a no-op");
        // `slow` still reads epoch 0 unharmed.
        assert_eq!(slow.snapshot().value, 10);
        assert_eq!(slow.lag(), 2);
        assert_eq!(pb.reclaim(), 0, "slow reader still pins everything");
        drop(slow);
        assert_eq!(pb.reclaim(), 2, "dropping the laggard frees both");
        let s = pb.stats();
        assert_eq!((s.published, s.reclaimed, s.retired, s.lag_peak), (2, 2, 0, 2));
    }

    #[test]
    fn reclaim_with_no_readers_frees_everything() {
        let (mut pb, handle) = epoch_pair(0u32);
        for v in 1..=5 {
            pb.publish(v);
        }
        assert_eq!(pb.reclaim(), 5);
        assert_eq!(pb.stats().lag_peak, 5);
        // A reader minted now starts at the latest epoch.
        let r = handle.reader();
        assert_eq!(r.snapshot().epoch, 5);
        assert_eq!(r.lag(), 0);
    }

    #[test]
    fn reclaim_with_salvages_sole_owner_snapshots() {
        let (mut pb, handle) = epoch_pair(0u32);
        let slow = handle.reader();
        for v in 1..=3 {
            pb.publish(v);
        }
        let mut salvaged = Vec::new();
        assert_eq!(pb.reclaim_with(|v| salvaged.push(v)), 0, "pinned by `slow`");
        assert!(salvaged.is_empty());
        drop(slow);
        assert_eq!(pb.reclaim_with(|v| salvaged.push(v)), 3);
        salvaged.sort_unstable();
        assert_eq!(salvaged, vec![0, 1, 2], "every retired payload came back");
    }

    #[test]
    fn concurrent_readers_never_see_a_torn_epoch() {
        // Snapshots carry (epoch, epoch * K): any mix of two snapshots
        // breaks the invariant. Free-running readers check it while
        // the publisher flips as fast as it can.
        const K: u64 = 0x9e37_79b9;
        let (mut pb, handle) = epoch_pair((0u64, 0u64));
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let stop = &stop;
            for _ in 0..4 {
                let mut r = handle.reader();
                scope.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        r.refresh();
                        let v = r.snapshot();
                        assert_eq!(v.value.0, v.epoch, "snapshot/epoch mismatch");
                        assert_eq!(v.value.1, v.epoch.wrapping_mul(K), "torn payload");
                        assert!(v.epoch >= last, "epoch went backwards");
                        last = v.epoch;
                    }
                });
            }
            for e in 1..=2_000u64 {
                pb.publish((e, e.wrapping_mul(K)));
                if e % 64 == 0 {
                    pb.reclaim();
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        pb.reclaim();
        let s = pb.stats();
        assert_eq!(s.published, 2_000);
        assert_eq!(s.reclaimed, 2_000, "all readers gone — everything reclaims");
    }
}
