//! # HIERAS — a DHT-based hierarchical P2P routing algorithm
//!
//! Facade crate for the HIERAS reproduction (Xu, Min & Hu, ICPP 2003).
//! Re-exports the workspace crates under one roof so downstream users
//! can depend on a single `hieras` crate:
//!
//! * [`id`] — identifier circle, SHA-1, interval arithmetic.
//! * [`topology`] — GT-ITM Transit-Stub / Inet / BRITE network models
//!   and the shortest-path latency oracle.
//! * [`chord`] — the Chord baseline DHT (oracle + dynamic protocol).
//! * [`core`] — HIERAS itself: distributed binning, ring tables,
//!   multi-layer finger tables and the m-loop routing procedure.
//! * [`sim`] — workload generation, metrics, experiment runners.
//! * [`proto`] — message-level protocol engine with pluggable
//!   transports (simulated-delay and real std-mpsc threads).
//! * [`churn`] — deterministic churn engine: joins, graceful leaves
//!   and silent fails replayed through the message engine and the
//!   dynamic Chord baseline, with timeout/retry lookups and
//!   failure-rate metrics.
//! * [`can`] — CAN underlay and hierarchical CAN (the paper's §3.2
//!   extension claim, implemented).
//! * [`rt`] — the zero-dependency runtime: deterministic parallel
//!   executor, seeded PRNG, and the JSON reader/writer every other
//!   crate serializes with.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and
//! `EXPERIMENTS.md` for the paper-versus-measured record of every
//! table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hieras_can as can;
pub use hieras_chord as chord;
pub use hieras_churn as churn;
pub use hieras_core as core;
pub use hieras_id as id;
pub use hieras_pastry as pastry;
pub use hieras_proto as proto;
pub use hieras_rt as rt;
pub use hieras_sim as sim;
pub use hieras_topology as topology;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use hieras_chord::ChordOracle;
    pub use hieras_churn::{run_churn, ChurnExperimentConfig, ChurnReport};
    pub use hieras_core::{Binning, HierasConfig, HierasOracle};
    pub use hieras_id::{Id, IdSpace, Key, Sha1};
    pub use hieras_sim::{Experiment, ExperimentConfig, Metrics, TopologyKind, Workload};
    pub use hieras_topology::{LatencyOracle, Topology, TransitStubConfig};
}
