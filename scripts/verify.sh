#!/usr/bin/env sh
# Canonical CI entry point: builds the workspace (warnings are
# errors), runs every test, and exercises every benchmark harness end
# to end — all offline, no network, no external crates. Run from the
# repository root:
#
#   scripts/verify.sh
#
# HIERAS_THREADS=n pins the executor width for the bench steps.
set -eu

cd "$(dirname "$0")/.."

echo "==> zero-dependency audit: crate manifests reference only workspace crates"
# Every [dependencies]/[dev-dependencies] entry in every crate manifest
# must be a workspace hieras-* crate (`foo.workspace = true` or
# `foo = { workspace = true, ... }`). Anything else — a version
# requirement, a git/registry source — is an external dependency and
# fails CI before the build can try to touch the network.
bad=$(awk '
    /^\[/ {
        in_deps = ($0 ~ /^\[(dev-|build-)?dependencies\]/)
        in_wsdeps = ($0 ~ /^\[workspace\.dependencies\]/)
    }
    in_deps && /^[A-Za-z0-9_.-]+[[:space:]]*=/ {
        name = $1
        sub(/[[:space:]]*=.*/, "", name)
        sub(/\..*/, "", name)  # hieras-rt.workspace = true
        if (name !~ /^hieras-/ || $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
            printf "%s: %s\n", FILENAME, $0
    }
    # The workspace table itself may only hold hieras-* path deps —
    # no version, git, or registry sources to resolve remotely.
    in_wsdeps && /^[A-Za-z0-9_.-]+[[:space:]]*=/ {
        if ($1 !~ /^hieras-/ || $0 !~ /path[[:space:]]*=/ || $0 ~ /version|git|registry/)
            printf "%s: %s\n", FILENAME, $0
    }
' Cargo.toml crates/*/Cargo.toml)
if [ -n "$bad" ]; then
    echo "external dependency detected:" >&2
    echo "$bad" >&2
    exit 1
fi

echo "==> tier 1: release build (deny warnings)"
RUSTFLAGS="-D warnings" cargo build --workspace --release

echo "==> tier 1: workspace tests"
cargo test -q --workspace

echo "==> bench smoke: replay, 500 peers, 2000 requests, obs on"
./target/release/bench_replay --smoke --obs --trace-out target/replay_trace.jsonl
# The span/instant trace must convert to Chrome trace-event JSON
# (about:tracing / Perfetto) through the scripts/trace2chrome viewer
# path.
scripts/trace2chrome target/replay_trace.jsonl target/replay_trace.chrome.json
if ! grep -q '"traceEvents"' target/replay_trace.chrome.json; then
    echo "trace2chrome produced no traceEvents array" >&2
    exit 1
fi
echo "trace2chrome: replay trace converts to Chrome trace-event JSON"

echo "==> bench smoke: churn, 120 nodes, 4 departure scenarios"
./target/release/churn --smoke
# The correlated-failure scenario must actually cut a domain: its row
# rides next to the independent-death mixes precisely so the two are
# comparable, and a domain row that killed nobody measured nothing.
if ! grep -q '"scenario": "domain"' BENCH_churn.json; then
    echo "no domain-failure scenario in BENCH_churn.json" >&2
    exit 1
fi
domain_killed=$(awk -F': ' '/"domain_killed"/ { v = $2; sub(/,.*/, "", v); if (v + 0 > m) m = v + 0 } END { print m + 0 }' BENCH_churn.json)
if [ "$domain_killed" -lt 2 ]; then
    echo "domain-failure scenario killed $domain_killed nodes (need >= 2)" >&2
    exit 1
fi
echo "domain-failure scenario killed $domain_killed co-located nodes at one instant"

echo "==> bench smoke: scale, 500 peers, 2000 requests + regression gates"
./target/release/bench_scale --smoke
# The smoke sweep runs the rows AND labels oracle backends; labels are
# exact, so the binary records whether the labels-backend routing
# metrics came out byte-identical to rows. Any false is a correctness
# bug, and at least one comparison must actually have happened.
if grep -q '"metrics_match_rows": false' BENCH_scale.json; then
    echo "labels-backend routing metrics diverged from the rows backend" >&2
    exit 1
fi
if ! grep -q '"metrics_match_rows": true' BENCH_scale.json; then
    echo "no labels-vs-rows identity comparison ran in the scale smoke" >&2
    exit 1
fi
echo "labels-backend metrics byte-identical to rows"
# Fail if the smoke replay regressed more than 2x against the
# checked-in budget (scripts/scale_budget_ns, measured on the CI box).
# The first size entry is the rows backend, matching the budget's
# provenance.
budget=$(cat scripts/scale_budget_ns)
median=$(awk -F': ' '/"median_ns_per_lookup"/ { v = $2; sub(/,.*/, "", v); print v; exit }' BENCH_scale.json)
awk -v m="$median" -v b="$budget" 'BEGIN {
    if (m + 0 > 2 * b) {
        printf "scale smoke regressed: median %.1f ns/lookup > 2x budget %.1f\n", m, b
        exit 1
    }
    printf "scale smoke median %.1f ns/lookup within 2x budget %.1f\n", m, b
}'
# Same 2x gate for the hub-label build itself (first label_stats
# build_ms in the smoke output vs scripts/label_budget_ms).
label_budget=$(cat scripts/label_budget_ms)
label_ms=$(awk -F': ' '
    /"label_stats": \{/ { in_labels = 1 }
    in_labels && /"build_ms"/ { v = $2; sub(/,.*/, "", v); print v; exit }
' BENCH_scale.json)
if [ -z "$label_ms" ]; then
    echo "no label_stats.build_ms found in the scale smoke output" >&2
    exit 1
fi
awk -v m="$label_ms" -v b="$label_budget" 'BEGIN {
    if (m + 0 > 2 * b) {
        printf "label build regressed: %.1f ms > 2x budget %.1f\n", m, b
        exit 1
    }
    printf "label build %.1f ms within 2x budget %.1f\n", m, b
}'
# Peak-RSS gate: the largest high-water mark any smoke run reported
# must stay under the checked-in budget (scripts/rss_budget_bytes —
# the full sweep's 1M-peer allowance, so the smoke has huge headroom
# and a leak that blows it is a real leak).
rss_budget=$(cat scripts/rss_budget_bytes)
rss_max=$(awk -F': ' '/"peak_rss_bytes"/ { v = $2; sub(/,.*/, "", v); if (v + 0 > m) m = v + 0 } END { print m + 0 }' BENCH_scale.json)
awk -v m="$rss_max" -v b="$rss_budget" 'BEGIN {
    if (m > b) {
        printf "peak RSS over budget: %.0f bytes > %.0f\n", m, b
        exit 1
    }
    printf "peak RSS %.1f MB within budget %.1f MB\n", m / 1048576, b / 1048576
}'
# Label query-time gate: the smoke sweep times rows first, labels
# second. The memoized label merge must stay within 1.5x of the O(1)
# row lookup (target: 1.2x) or the million-peer backend has lost its
# flat-lookup property.
labels_median=$(awk -F': ' '/"median_ns_per_lookup"/ { v = $2; sub(/,.*/, "", v); n++; if (n == 2) { print v; exit } }' BENCH_scale.json)
if [ -z "$labels_median" ]; then
    echo "no labels-backend median in the scale smoke output" >&2
    exit 1
fi
awk -v r="$median" -v l="$labels_median" 'BEGIN {
    if (l + 0 > 1.5 * r) {
        printf "label queries too slow: %.1f ns vs rows %.1f ns (%.2fx > 1.5x)\n", l, r, l / r
        exit 1
    }
    printf "label queries %.1f ns vs rows %.1f ns (%.2fx, gate 1.5x)\n", l, r, l / r
}'

echo "==> bench smoke: live serving, 500 peers under churn, obs on"
./target/release/bench_live --smoke --obs --timeseries-out target/timeseries.jsonl
# Throughput gate: the quiesced serving path (the first
# median_ns_per_lookup in the file) must stay within 2x of the
# checked-in budget (scripts/live_budget_ns, measured on the CI box).
live_budget=$(cat scripts/live_budget_ns)
live_median=$(awk -F': ' '/"median_ns_per_lookup"/ { v = $2; sub(/,.*/, "", v); print v; exit }' BENCH_live.json)
awk -v m="$live_median" -v b="$live_budget" 'BEGIN {
    if (m + 0 > 2 * b) {
        printf "live smoke regressed: quiesced median %.1f ns/lookup > 2x budget %.1f\n", m, b
        exit 1
    }
    printf "live smoke quiesced median %.1f ns/lookup within 2x budget %.1f\n", m, b
}'
# Quiesced-vs-replay identity: the first "hieras" summary block of
# BENCH_live.json (the quiesced baseline, by construction) must equal
# BENCH_replay.json's replayed HIERAS summary byte for byte — the
# snapshot serving path is the replay path, or it is wrong. Blocks are
# extracted by brace depth and compared whitespace-stripped (the two
# files nest them at different indents).
hieras_block() {
    awk '
        !found && /"hieras": \{/ { found = 1 }
        found {
            print
            depth += gsub(/\{/, "{") - gsub(/\}/, "}")
            if (depth <= 0) exit
        }
    ' "$1" | tr -d ' \t\n'
}
live_hieras=$(hieras_block BENCH_live.json)
replay_hieras=$(hieras_block BENCH_replay.json)
if [ -z "$live_hieras" ] || [ "$live_hieras" != "$replay_hieras" ]; then
    echo "quiesced serving metrics diverged from the replay bench:" >&2
    echo "  live:   $live_hieras" >&2
    echo "  replay: $replay_hieras" >&2
    exit 1
fi
echo "quiesced serving metrics byte-identical to the replay bench"

echo "==> incremental maintenance: delta identity + publish-latency gates"
# The bench replays the same deterministic schedule twice — delta
# rebuilds off, then on — and records whether both runs published
# byte-identical snapshots (routing metrics AND the chained snapshot
# digest). The binary asserts it too; the grep keeps the artifact
# honest. Note the quiesced-vs-replay identity above already ran with
# the delta path enabled — the serving engine's default rows use it.
if ! grep -q '"delta_identity": true' BENCH_live.json; then
    echo "delta rebuilds were not byte-identical to full rebuilds" >&2
    exit 1
fi
echo "delta rebuilds byte-identical to full rebuilds"
# Publish-latency gate: at smoke sizes (tiny per-epoch ring turnover)
# the incremental publish p50 must come in at or under the checked-in
# fraction of the full-rebuild p50 (scripts/incremental_publish_ratio
# — 0.5 means "at least 2x faster").
ratio_budget=$(cat scripts/incremental_publish_ratio)
ratio=$(awk -F': ' '/"incremental_publish_ratio"/ { v = $2; sub(/,.*/, "", v); print v; exit }' BENCH_live.json)
if [ -z "$ratio" ]; then
    echo "no incremental_publish_ratio in BENCH_live.json" >&2
    exit 1
fi
awk -v r="$ratio" -v b="$ratio_budget" 'BEGIN {
    if (r + 0 > b + 0) {
        printf "incremental publish too slow: p50 at %.2fx of a full rebuild (budget %.2fx)\n", r, b
        exit 1
    }
    printf "incremental publish p50 at %.2fx of a full rebuild (budget %.2fx)\n", r, b
}'

echo "==> lookup cache: identity, hit-rate and hot-key latency gates"
# The skew sweep replays every workload through the serving path with
# the hot-key cache off and on. Cache-off must be a no-op (the uniform
# uncached run byte-identical to the quiesced baseline), and the
# cached runs must have re-verified every hit against the
# authoritative route — both recorded by the binary, kept honest here.
if ! grep -q '"cache_off_identity": true' BENCH_live.json; then
    echo "cache-off run was not byte-identical to the quiesced baseline" >&2
    exit 1
fi
if ! grep -q '"cache_verified": true' BENCH_live.json; then
    echo "cached sweep did not run in verify mode" >&2
    exit 1
fi
echo "cache off is a no-op; every cached hit re-verified against the route"
# Hit-rate floor: under the Zipf(0.99) smoke workload the
# frequency-sketch admission must capture at least the checked-in
# fraction of lookups (scripts/cache_hit_floor).
hit_floor=$(cat scripts/cache_hit_floor)
hit_rate=$(awk -F': ' '/"zipf_smoke_hit_rate"/ { v = $2; sub(/,.*/, "", v); print v; exit }' BENCH_live.json)
if [ -z "$hit_rate" ]; then
    echo "no zipf_smoke_hit_rate in BENCH_live.json" >&2
    exit 1
fi
awk -v h="$hit_rate" -v f="$hit_floor" 'BEGIN {
    if (h + 0 < f + 0) {
        printf "cache hit rate %.3f under the Zipf(0.99) smoke floor %.3f\n", h, f
        exit 1
    }
    printf "cache hit rate %.3f over the Zipf(0.99) floor %.3f\n", h, f
}'
# Hot-key latency gate: the cached hot-key p50 must come in at or
# under the checked-in fraction of the uncached hot-key p50
# (scripts/cached_latency_ratio — 0.5 means "at least 2x faster").
cache_ratio_budget=$(cat scripts/cached_latency_ratio)
cache_ratio=$(awk -F': ' '/"cached_hot_p50_ratio"/ { v = $2; sub(/,.*/, "", v); print v; exit }' BENCH_live.json)
if [ -z "$cache_ratio" ]; then
    echo "no cached_hot_p50_ratio in BENCH_live.json" >&2
    exit 1
fi
awk -v r="$cache_ratio" -v b="$cache_ratio_budget" 'BEGIN {
    if (r + 0 > b + 0) {
        printf "cached hot-key p50 at %.2fx of uncached (budget %.2fx)\n", r, b
        exit 1
    }
    printf "cached hot-key p50 at %.2fx of uncached (budget %.2fx)\n", r, b
}'

echo "==> telemetry: windowed time-series gates"
# Both streams (deterministic sim windows, free-running wall windows)
# must parse back through hieras_rt::FromJson and re-serialize
# byte-identically — hieras-timeline --check is that round trip.
./target/release/hieras-timeline --check target/timeseries.jsonl
./target/release/hieras-timeline --check target/timeseries.live.jsonl
# And render: the table and the diff must both produce output (the
# diff doubles as the demo of `--compare`).
./target/release/hieras-timeline target/timeseries.jsonl | head -n 4
compare_lines=$(./target/release/hieras-timeline --compare \
    target/timeseries.jsonl target/timeseries.live.jsonl | wc -l)
if [ "$compare_lines" -lt 4 ]; then
    echo "hieras-timeline --compare produced no per-window rows" >&2
    exit 1
fi
echo "hieras-timeline --compare rendered $compare_lines lines"
# The flight recorder's slow-lookup trace is a regular hieras-obs
# span stream: it must convert through the Chrome viewer path too.
scripts/trace2chrome target/timeseries.slow.jsonl target/timeseries.slow.chrome.json
grep -q '"traceEvents"' target/timeseries.slow.chrome.json
# Epoch-health gauges must actually appear in the free-running
# windows: a live run that published snapshots but recorded no age or
# backlog gauges has lost the maintenance side of the ledger.
for gauge in serve.epoch.snapshot_age_ms serve.epoch.retired_backlog serve.epoch.reader_lag; do
    if ! grep -q "\"$gauge\"" target/timeseries.live.jsonl; then
        echo "free-running windows carry no $gauge gauge" >&2
        exit 1
    fi
done
echo "epoch-health gauges present in the free-running windows"
# Window density: the free-running run must populate at least one
# window per wall second (the bench cuts 250 ms windows, so this has
# 4x headroom), and at least one window overall.
live_windows=$(awk -F': ' '/"timeseries_windows"/ { v = $2; sub(/,.*/, "", v); w = v } END { print w + 0 }' BENCH_live.json)
live_wall_ns=$(awk -F': ' '/"wall_ns"/ { v = $2; sub(/,.*/, "", v); w = v } END { print w + 0 }' BENCH_live.json)
awk -v w="$live_windows" -v ns="$live_wall_ns" 'BEGIN {
    need = int(ns / 1e9); if (need < 1) need = 1
    if (w < need) {
        printf "live run populated %d windows over %.1f s (need >= %d)\n", w, ns / 1e9, need
        exit 1
    }
    printf "live run populated %d windows over %.1f s wall\n", w, ns / 1e9
}'
# Telemetry overhead gate: free-running throughput with telemetry on
# must stay within the checked-in budget
# (scripts/telemetry_overhead_pct) of the telemetry-off baseline.
overhead_budget=$(cat scripts/telemetry_overhead_pct)
overhead=$(awk -F': ' '/"telemetry_overhead_pct"/ { v = $2; sub(/,.*/, "", v); print v; exit }' BENCH_live.json)
awk -v o="$overhead" -v b="$overhead_budget" 'BEGIN {
    if (o + 0 > b + 0) {
        printf "telemetry overhead %.1f%% exceeds the %.1f%% budget\n", o, b
        exit 1
    }
    printf "telemetry overhead %.1f%% within the %.1f%% budget\n", o, b
}'

echo "==> verify OK"
