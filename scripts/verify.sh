#!/usr/bin/env sh
# Canonical CI entry point: builds the workspace (warnings are
# errors), runs every test, and exercises both benchmark harnesses end
# to end — all offline, no network, no external crates. Run from the
# repository root:
#
#   scripts/verify.sh
#
# HIERAS_THREADS=n pins the executor width for the bench steps.
set -eu

cd "$(dirname "$0")/.."

echo "==> tier 1: release build (deny warnings)"
RUSTFLAGS="-D warnings" cargo build --workspace --release

echo "==> tier 1: workspace tests"
cargo test -q --workspace

echo "==> bench smoke: replay, 500 peers, 2000 requests"
./target/release/bench_replay --smoke

echo "==> bench smoke: churn, 120 nodes, 3 departure mixes"
./target/release/churn --smoke

echo "==> verify OK"
