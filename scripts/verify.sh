#!/usr/bin/env sh
# Canonical CI entry point: builds the workspace, runs every test, and
# exercises the replay benchmark end to end — all offline, no network,
# no external crates. Run from the repository root:
#
#   scripts/verify.sh
#
# HIERAS_THREADS=n pins the executor width for the bench step.
set -eu

cd "$(dirname "$0")/.."

echo "==> tier 1: release build"
cargo build --workspace --release

echo "==> tier 1: workspace tests"
cargo test -q --workspace

echo "==> bench smoke: 500 peers, 2000 requests"
./target/release/bench_replay --smoke

echo "==> verify OK"
